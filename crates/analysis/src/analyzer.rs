//! The whole-program termination analyzer: configuration, intra-procedural
//! analysis (§5.1) and inter-procedural analysis via summaries (§5.2).

use crate::{Both, MpExp, MpLlrf, Ordered, PhaseAnalysis};
use compact_graph::{omega_path_expression, path_expression_to, DiGraph, EdgeId, NodeId};
use compact_lang::{compile, CompileError, EdgeLabel, Procedure, Program};
use compact_logic::{Formula, Symbol, Term};
use compact_polyhedra::affine_hull;
use compact_regex::{Interpretation, OmegaRegex, Regex};
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, MpAlgebra, TfAlgebra, TransitionFormula};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Which ranking-function based operator to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RankingChoice {
    /// Linear lexicographic ranking functions (the default).
    Lexicographic,
    /// Plain linear ranking functions only (the paper's footnote-3 ablation).
    LinearOnly,
    /// Do not use ranking functions.
    None,
}

/// Configuration of the analyzer: which mortal precondition operators and
/// combinators to use (the rows of Table 2).
#[derive(Clone, Debug)]
pub struct AnalyzerConfig {
    /// The ranking-function operator.
    pub ranking: RankingChoice,
    /// Whether to use the `mpexp` operator (§6.1).
    pub use_exp: bool,
    /// Whether to wrap the base operator in phase analysis (§6.2).
    pub use_phase: bool,
}

impl AnalyzerConfig {
    /// ComPACT's default configuration: `mpPhase(P, mpLLRF ⋉ mpexp)`.
    pub fn compact_default() -> AnalyzerConfig {
        AnalyzerConfig { ranking: RankingChoice::Lexicographic, use_exp: true, use_phase: true }
    }

    /// `mpLLRF` only (Table 2, "LLRF only").
    pub fn llrf_only() -> AnalyzerConfig {
        AnalyzerConfig { ranking: RankingChoice::Lexicographic, use_exp: false, use_phase: false }
    }

    /// `mpPhase(P, mpLLRF)` (Table 2, "LLRF + phase").
    pub fn llrf_phase() -> AnalyzerConfig {
        AnalyzerConfig { ranking: RankingChoice::Lexicographic, use_exp: false, use_phase: true }
    }

    /// `mpexp` only (Table 2, "exp only").
    pub fn exp_only() -> AnalyzerConfig {
        AnalyzerConfig { ranking: RankingChoice::None, use_exp: true, use_phase: false }
    }

    /// `mpPhase(P, mpexp)` (Table 2, "exp + phase").
    pub fn exp_phase() -> AnalyzerConfig {
        AnalyzerConfig { ranking: RankingChoice::None, use_exp: true, use_phase: true }
    }

    /// A human-readable name for the configuration.
    pub fn describe(&self) -> String {
        let base = match (self.ranking, self.use_exp) {
            (RankingChoice::Lexicographic, true) => "LLRF⋉exp".to_string(),
            (RankingChoice::Lexicographic, false) => "LLRF".to_string(),
            (RankingChoice::LinearOnly, true) => "LRF⋉exp".to_string(),
            (RankingChoice::LinearOnly, false) => "LRF".to_string(),
            (RankingChoice::None, true) => "exp".to_string(),
            (RankingChoice::None, false) => "none".to_string(),
        };
        if self.use_phase {
            format!("phase({})", base)
        } else {
            base
        }
    }

    /// Builds the mortal precondition operator described by the
    /// configuration.
    pub fn build_operator(&self) -> Box<dyn MortalPreconditionOperator> {
        let ranking = match self.ranking {
            RankingChoice::Lexicographic => Some(MpLlrf::new()),
            RankingChoice::LinearOnly => Some(MpLlrf::linear_only()),
            RankingChoice::None => None,
        };
        let base: Box<dyn MortalPreconditionOperator> = match (ranking, self.use_exp) {
            (Some(r), true) => Box::new(Ordered::new(r, MpExp::new())),
            (Some(r), false) => Box::new(r),
            (None, true) => Box::new(MpExp::new()),
            (None, false) => Box::new(Both::new(MpLlrf::new(), MpExp::new())),
        };
        if self.use_phase {
            Box::new(PhaseAnalysis::new(base))
        } else {
            base
        }
    }
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig::compact_default()
    }
}

/// The outcome of a termination analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every execution terminates (the mortal precondition is valid).
    Terminating,
    /// Termination was proved only under a non-trivial condition.
    Conditional,
    /// No useful mortal precondition was found.
    Unknown,
}

/// The result of analyzing a program or a loop.
#[derive(Clone, Debug)]
pub struct TerminationReport {
    /// The verdict.
    pub verdict: Verdict,
    /// The mortal precondition computed for the entry vertex.
    pub mortal_precondition: Formula,
    /// Wall-clock time spent in the analysis.
    pub analysis_time: Duration,
    /// The name of the operator configuration used.
    pub operator: String,
}

impl TerminationReport {
    /// Returns `true` if the program was proved terminating from every
    /// initial state.
    pub fn proved_termination(&self) -> bool {
        self.verdict == Verdict::Terminating
    }

    /// Returns `true` if a non-trivial conditional termination argument was
    /// found.
    pub fn proved_conditional(&self) -> bool {
        matches!(self.verdict, Verdict::Terminating | Verdict::Conditional)
    }
}

/// The ComPACT termination analyzer.
///
/// # Examples
///
/// ```
/// use compact_analysis::Analyzer;
/// let analyzer = Analyzer::with_default_config();
/// let report = analyzer
///     .analyze_source("proc main() { while (x > 0) { x := x - 1; } }")
///     .unwrap();
/// assert!(report.proved_termination());
/// ```
pub struct Analyzer {
    config: AnalyzerConfig,
    solver: Solver,
}

impl Analyzer {
    /// Creates an analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Analyzer {
        Analyzer { config, solver: Solver::new() }
    }

    /// Creates an analyzer with ComPACT's default configuration.
    pub fn with_default_config() -> Analyzer {
        Analyzer::new(AnalyzerConfig::compact_default())
    }

    /// The configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// The underlying solver (exposed for examples and diagnostics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Parses, lowers and analyzes a program.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the source does not compile.
    pub fn analyze_source(&self, source: &str) -> Result<TerminationReport, CompileError> {
        let program = compile(source)?;
        Ok(self.analyze_program(&program))
    }

    /// Analyzes a lowered program.
    pub fn analyze_program(&self, program: &Program) -> TerminationReport {
        let start = Instant::now();
        let operator = self.config.build_operator();
        let mp = if program.has_calls() {
            self.interprocedural_mortal_precondition(program, &operator)
        } else {
            let main = program.entry_procedure();
            self.procedure_mortal_precondition(program, main, &BTreeMap::new(), &operator)
        };
        let mp = self.solver.prune(&mp);
        self.report(mp, start.elapsed())
    }

    /// Computes a mortal precondition for a single loop body given as a
    /// transition formula (the `(-)^ω` of the configured operator).
    pub fn loop_mortal_precondition(&self, body: &TransitionFormula) -> Formula {
        let operator = self.config.build_operator();
        operator.mortal_precondition(&self.solver, body)
    }

    fn report(&self, mp: Formula, elapsed: Duration) -> TerminationReport {
        let verdict = if self.solver.is_valid(&mp) {
            Verdict::Terminating
        } else if self.solver.is_sat(&mp) {
            Verdict::Conditional
        } else {
            Verdict::Unknown
        };
        TerminationReport {
            verdict,
            mortal_precondition: mp,
            analysis_time: elapsed,
            operator: self.config.describe(),
        }
    }

    /// Intra-procedural analysis of one procedure: interpret the ω-path
    /// expression of its CFG (calls are interpreted via `summaries`).
    fn procedure_mortal_precondition(
        &self,
        program: &Program,
        procedure: &Procedure,
        summaries: &BTreeMap<String, TransitionFormula>,
        operator: &dyn MortalPreconditionOperator,
    ) -> Formula {
        let expr = omega_path_expression(&procedure.graph, procedure.entry);
        let algebra = TfAlgebra::new(&self.solver, program.vars.clone());
        let mp_algebra = MpAlgebra::new(&self.solver, operator);
        let interp = Interpretation::new(&algebra, &mp_algebra, |edge: &EdgeId| {
            self.edge_semantics(program, procedure, *edge, summaries)
        });
        interp.eval_omega(&expr).simplify()
    }

    fn edge_semantics(
        &self,
        program: &Program,
        procedure: &Procedure,
        edge: EdgeId,
        summaries: &BTreeMap<String, TransitionFormula>,
    ) -> TransitionFormula {
        match procedure.label(edge) {
            EdgeLabel::Transition(t) => t.extend_footprint(&program.vars),
            EdgeLabel::Call(name) => summaries
                .get(name)
                .cloned()
                .unwrap_or_else(|| TransitionFormula::bottom(&program.vars)),
        }
    }

    /// Inter-procedural analysis (§5.2): compute procedure summaries by a
    /// closure-accelerated fixpoint, build the ICFG, and interpret its ω-path
    /// expression from the entry of the main procedure.
    fn interprocedural_mortal_precondition(
        &self,
        program: &Program,
        operator: &dyn MortalPreconditionOperator,
    ) -> Formula {
        let summaries = self.compute_summaries(program);
        let (icfg, labels, entry) = self.build_icfg(program, &summaries);
        let expr = omega_path_expression(&icfg, entry);
        let algebra = TfAlgebra::new(&self.solver, program.vars.clone());
        let mp_algebra = MpAlgebra::new(&self.solver, operator);
        let interp =
            Interpretation::new(&algebra, &mp_algebra, |edge: &EdgeId| labels[*edge].clone());
        interp.eval_omega(&expr).simplify()
    }

    /// Computes the summary assignment `S` of §5.2 by Kleene iteration
    /// accelerated with the closure operator `ρ(T) = ρ_P(T) ∧ ρ_aff(T)`
    /// (Appendix B).
    pub fn compute_summaries(&self, program: &Program) -> BTreeMap<String, TransitionFormula> {
        let vars = program.vars.clone();
        let mut summaries: BTreeMap<String, TransitionFormula> = program
            .procedures
            .iter()
            .map(|p| (p.name.clone(), TransitionFormula::bottom(&vars)))
            .collect();
        let max_rounds = 2 * vars.len() + 10;
        for _ in 0..max_rounds {
            let mut changed = false;
            let mut next = summaries.clone();
            for procedure in &program.procedures {
                let body = self.procedure_summary_body(program, procedure, &summaries);
                let closed = self.closure(&body);
                let previous = &summaries[&procedure.name];
                if !(closed.entails(&self.solver, previous)
                    && previous.entails(&self.solver, &closed))
                {
                    changed = true;
                }
                next.insert(procedure.name.clone(), closed);
            }
            summaries = next;
            if !changed {
                break;
            }
        }
        summaries
    }

    /// `M(p, S)`: the interpretation of `PathExp(entry(p), exit(p))` with the
    /// current summary assignment.
    fn procedure_summary_body(
        &self,
        program: &Program,
        procedure: &Procedure,
        summaries: &BTreeMap<String, TransitionFormula>,
    ) -> TransitionFormula {
        let expr: Regex<EdgeId> =
            path_expression_to(&procedure.graph, procedure.entry, procedure.exit);
        let algebra = TfAlgebra::new(&self.solver, program.vars.clone());
        // A throw-away ω-algebra (never used for finite path expressions).
        let mp_algebra = MpAlgebra::new(&self.solver, crate::MpExp::new());
        let interp = Interpretation::new(&algebra, &mp_algebra, |edge: &EdgeId| {
            self.edge_semantics(program, procedure, *edge, summaries)
        });
        interp.eval(&expr)
    }

    /// The closure operator `ρ(T) = ρ_P(T) ∧ ρ_aff(T)` of Appendix B, using
    /// the ordering predicates between primed and unprimed variables and the
    /// affine hull.
    pub fn closure(&self, tf: &TransitionFormula) -> TransitionFormula {
        let vars = tf.vars().to_vec();
        let closed = tf.closed_formula();
        if !self.solver.is_sat(&closed) {
            return TransitionFormula::bottom(&vars);
        }
        let mut parts = Vec::new();
        // ρ_P: ordering predicates x ⊲⊳ x' entailed by the summary.
        for v in &vars {
            let x = Term::var(*v);
            let xp = Term::var(v.primed());
            for predicate in [
                Formula::le(x.clone(), xp.clone()),
                Formula::ge(x.clone(), xp.clone()),
                Formula::eq(x.clone(), xp.clone()),
                Formula::lt(x.clone(), xp.clone()),
                Formula::gt(x.clone(), xp.clone()),
            ] {
                if self.solver.entails(&closed, &predicate) {
                    parts.push(predicate);
                }
            }
        }
        // ρ_aff: the affine hull of the summary.
        let hull = affine_hull(&self.solver, &closed);
        parts.push(hull.to_formula());
        TransitionFormula::new(Formula::and(parts), &vars)
    }

    /// Builds the inter-procedural control flow graph of §5.2: the disjoint
    /// union of the procedure CFGs, call edges labeled by summaries, plus
    /// inter-procedural edges from each call site to the callee entry labeled
    /// with the identity over the global variables.
    fn build_icfg(
        &self,
        program: &Program,
        summaries: &BTreeMap<String, TransitionFormula>,
    ) -> (DiGraph, Vec<TransitionFormula>, NodeId) {
        let mut graph = DiGraph::new();
        let mut labels: Vec<TransitionFormula> = Vec::new();
        let mut offsets: BTreeMap<String, usize> = BTreeMap::new();
        for procedure in &program.procedures {
            let offset = graph.num_nodes();
            offsets.insert(procedure.name.clone(), offset);
            for _ in 0..procedure.graph.num_nodes() {
                graph.add_node();
            }
        }
        let identity = TransitionFormula::identity(&program.vars);
        for procedure in &program.procedures {
            let offset = offsets[&procedure.name];
            for (edge, e) in procedure.graph.edges() {
                let label = match procedure.label(edge) {
                    EdgeLabel::Transition(t) => t.extend_footprint(&program.vars),
                    EdgeLabel::Call(name) => summaries
                        .get(name)
                        .cloned()
                        .unwrap_or_else(|| TransitionFormula::bottom(&program.vars)),
                };
                graph.add_edge(offset + e.src, offset + e.dst);
                labels.push(label);
                // Inter-procedural edge: call site -> callee entry.
                if let EdgeLabel::Call(name) = procedure.label(edge) {
                    let callee = program.procedure(name).expect("validated by the front end");
                    graph.add_edge(offset + e.src, offsets[name] + callee.entry);
                    labels.push(identity.clone());
                }
            }
        }
        // Ensure the analysis root has no incoming edges.
        let main = program.entry_procedure();
        let main_entry = offsets[&program.entry] + main.entry;
        let root = if graph.predecessors(main_entry).count() > 0 {
            let fresh = graph.add_node();
            graph.add_edge(fresh, main_entry);
            labels.push(identity);
            fresh
        } else {
            main_entry
        };
        (graph, labels, root)
    }

    /// Evaluates the ω-path expression of an arbitrary labeled graph (used by
    /// benchmarks that construct synthetic workloads directly).
    pub fn mortal_precondition_of_graph(
        &self,
        graph: &DiGraph,
        labels: &[TransitionFormula],
        root: NodeId,
        vars: &[Symbol],
    ) -> Formula {
        let operator = self.config.build_operator();
        let expr: OmegaRegex<EdgeId> = omega_path_expression(graph, root);
        let algebra = TfAlgebra::new(&self.solver, vars.to_vec());
        let mp_algebra = MpAlgebra::new(&self.solver, operator);
        let interp =
            Interpretation::new(&algebra, &mp_algebra, |edge: &EdgeId| labels[*edge].clone());
        interp.eval_omega(&expr).simplify()
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::with_default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(source: &str) -> TerminationReport {
        Analyzer::with_default_config().analyze_source(source).unwrap()
    }

    #[test]
    fn straight_line_code_terminates() {
        let report = analyze("proc main() { x := 1; y := x + 2; }");
        assert!(report.proved_termination());
    }

    #[test]
    fn simple_counting_loop_terminates() {
        let report = analyze("proc main() { while (x > 0) { x := x - 1; } }");
        assert!(report.proved_termination());
    }

    #[test]
    fn diverging_loop_is_not_proved() {
        let report = analyze("proc main() { while (x > 0) { x := x + 1; } }");
        assert!(!report.proved_termination());
        // But the conditional precondition x <= 0 is found.
        assert_eq!(report.verdict, Verdict::Conditional);
    }

    #[test]
    fn figure1_program_terminates() {
        let report = analyze(
            r#"
            proc main() {
                step := 8;
                while (true) {
                    m := 0;
                    while (m < step) {
                        if (n < 0) { halt; } else { m := m + 1; n := n - 1; }
                    }
                }
            }
            "#,
        );
        assert!(report.proved_termination(), "got {:?}", report.verdict);
    }

    #[test]
    fn nested_loop_with_constant_bounds() {
        // The §7 anecdote: for i in 0..4; for j in 0..4 { i := i; }.
        let report = analyze(
            r#"
            proc main() {
                i := 0;
                while (i < 4) {
                    j := 0;
                    while (j < 4) { i := i; j := j + 1; }
                    i := i + 1;
                }
            }
            "#,
        );
        assert!(report.proved_termination(), "got {:?}", report.verdict);
    }

    #[test]
    fn recursive_fibonacci_terminates() {
        let report = analyze(
            r#"
            proc main() {
                g := n;
                call fib();
            }
            proc fib() {
                if (g <= 1) {
                    r := 1;
                } else {
                    g := g - 1;
                    call fib();
                    t := r;
                    g := g - 1;
                    call fib();
                    r := r + t;
                }
            }
            "#,
        );
        assert!(report.proved_termination(), "got {:?}", report.verdict);
    }

    #[test]
    #[ignore = "covered by tests/end_to_end.rs; expensive in debug builds"]
    fn conditional_termination_of_figure4() {
        let report = analyze(
            r#"
            proc main() {
                while (x > 0) {
                    if (f >= 0) {
                        x := x - y;
                        y := y + 1;
                        f := f + 1;
                    } else {
                        x := x + 1;
                        f := f - 1;
                    }
                }
            }
            "#,
        );
        // The program does not always terminate, but a non-trivial mortal
        // precondition exists (x <= 0 ∨ f >= 0).
        assert_eq!(report.verdict, Verdict::Conditional);
        let solver = Solver::new();
        let f_nonneg = compact_logic::parse_formula("f >= 0").unwrap();
        assert!(solver.entails(&f_nonneg, &report.mortal_precondition));
    }

    #[test]
    fn config_descriptions() {
        assert_eq!(AnalyzerConfig::compact_default().describe(), "phase(LLRF⋉exp)");
        assert_eq!(AnalyzerConfig::llrf_only().describe(), "LLRF");
        assert_eq!(AnalyzerConfig::exp_phase().describe(), "phase(exp)");
    }

    #[test]
    fn summaries_of_simple_procedures() {
        let analyzer = Analyzer::with_default_config();
        let program = compile(
            "proc main() { call inc(); } proc inc() { x := x + 1; }",
        )
        .unwrap();
        let summaries = analyzer.compute_summaries(&program);
        let inc = &summaries["inc"];
        // The summary entails x' >= x + 1 (from the affine hull, even x' = x + 1).
        let solver = analyzer.solver();
        assert!(solver.entails(
            &inc.closed_formula(),
            &compact_logic::parse_formula("x' = x + 1").unwrap()
        ));
    }
}
