//! Combinators over mortal precondition operators (§6.3).

use compact_logic::Formula;
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, TransitionFormula};

/// The `⊗` combinator: `(mp₁ ⊗ mp₂)(F) = mp₁(F) ∨ mp₂(F)`.
///
/// If both operands are monotone, so is the combination.
pub struct Both<A, B> {
    first: A,
    second: B,
    name: String,
}

impl<A: MortalPreconditionOperator, B: MortalPreconditionOperator> Both<A, B> {
    /// Combines two operators by disjunction.
    pub fn new(first: A, second: B) -> Both<A, B> {
        let name = format!("{}+{}", first.name(), second.name());
        Both { first, second, name }
    }
}

impl<A: MortalPreconditionOperator, B: MortalPreconditionOperator> MortalPreconditionOperator
    for Both<A, B>
{
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        let a = self.first.mortal_precondition(solver, tf);
        let b = self.second.mortal_precondition(solver, tf);
        Formula::or(vec![a, b]).simplify()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The `⋉` combinator (ordered product):
/// `(mp₁ ⋉ mp₂)(F) = mp₂(F ∧ ¬mp₁(F))`.
///
/// The second operator only has to prove mortality of the region that the
/// first could not handle; provided `Pre(F) ⊨ mp₂(F)`-style coverage holds
/// (§6.3), the result is at least as precise as `⊗`.
pub struct Ordered<A, B> {
    first: A,
    second: B,
    name: String,
}

impl<A: MortalPreconditionOperator, B: MortalPreconditionOperator> Ordered<A, B> {
    /// Combines two operators as an ordered product.
    pub fn new(first: A, second: B) -> Ordered<A, B> {
        let name = format!("{}⋉{}", first.name(), second.name());
        Ordered { first, second, name }
    }
}

impl<A: MortalPreconditionOperator, B: MortalPreconditionOperator> MortalPreconditionOperator
    for Ordered<A, B>
{
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        let first = self.first.mortal_precondition(solver, tf);
        if solver.is_valid(&first) {
            return Formula::True;
        }
        let restricted = TransitionFormula::new(
            Formula::and(vec![tf.formula().clone(), Formula::not(first.clone())]),
            tf.vars(),
        );
        let second = self.second.mortal_precondition(solver, &restricted);
        Formula::or(vec![first, second]).simplify()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A mortal precondition operator given by a closure (used by tests and by
/// the ablation harness).
pub struct FnOperator<F> {
    function: F,
    name: String,
}

impl<F: Fn(&Solver, &TransitionFormula) -> Formula> FnOperator<F> {
    /// Wraps a closure as an operator.
    pub fn new(name: &str, function: F) -> FnOperator<F> {
        FnOperator { function, name: name.to_string() }
    }
}

impl<F: Fn(&Solver, &TransitionFormula) -> Formula> MortalPreconditionOperator for FnOperator<F> {
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        (self.function)(solver, tf)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MpExp, MpLlrf};
    use compact_logic::{parse_formula, Symbol};

    fn tf(formula: &str, vars: &[&str]) -> TransitionFormula {
        let vs: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        TransitionFormula::new(parse_formula(formula).unwrap(), &vs)
    }

    #[test]
    fn both_takes_the_union() {
        let solver = Solver::new();
        // LLRF proves nothing here (no linear ranking: x alternates), but
        // exp handles the even-countdown case.
        let t = tf("x != 0 && x' = x - 2", &["x"]);
        let llrf_only = MpLlrf::new().mortal_precondition(&solver, &t);
        let both = Both::new(MpLlrf::new(), MpExp::new()).mortal_precondition(&solver, &t);
        // The combination is at least as weak (as good) as each component.
        assert!(solver.entails(&llrf_only, &both));
        let exp_only = MpExp::new().mortal_precondition(&solver, &t);
        assert!(solver.entails(&exp_only, &both));
        assert!(solver.is_sat(&both));
    }

    #[test]
    fn ordered_product_is_at_least_as_precise_as_disjunction() {
        let solver = Solver::new();
        let cases = [
            tf("x != 0 && x' = x - 2", &["x"]),
            tf("x > 0 && x' = x - 1", &["x"]),
            tf("x >= 0 && x' = x + 1", &["x"]),
            tf("g >= 2 && (g' = g - 1 || g' = g - 2)", &["g"]),
        ];
        for t in &cases {
            let both = Both::new(MpLlrf::new(), MpExp::new()).mortal_precondition(&solver, t);
            let ordered =
                Ordered::new(MpLlrf::new(), MpExp::new()).mortal_precondition(&solver, t);
            assert!(
                solver.entails(&both, &ordered),
                "ordered product weaker than disjunction on {}",
                t
            );
        }
    }

    #[test]
    fn ordered_product_short_circuits_on_true() {
        let solver = Solver::new();
        let t = tf("x > 0 && x' = x - 1", &["x"]);
        // The second operator would panic if ever called.
        let panic_op = FnOperator::new("panic", |_: &Solver, _: &TransitionFormula| {
            panic!("second operator should not be needed")
        });
        let ordered = Ordered::new(MpLlrf::new(), panic_op);
        assert!(ordered.mortal_precondition(&solver, &t).is_true());
    }

    #[test]
    fn names_compose() {
        assert_eq!(Both::new(MpLlrf::new(), MpExp::new()).name(), "LLRF+exp");
        assert_eq!(Ordered::new(MpLlrf::new(), MpExp::new()).name(), "LLRF⋉exp");
    }
}
