//! ComPACT: the compositional, monotone, conditional termination analysis of
//! *"Termination Analysis without the Tears"* (Zhu & Kincaid, PLDI 2021).
//!
//! The crate provides:
//!
//! * the mortal precondition operators of §6 — [`MpLlrf`] (complete linear
//!   lexicographic ranking synthesis, Example 3.2), [`MpExp`] ("termination
//!   analysis for free", §6.1), the combinators [`Both`] (`⊗`) and
//!   [`Ordered`] (`⋉`, §6.3), and [`PhaseAnalysis`] (`mpPhase`, §6.2 /
//!   Algorithm 3);
//! * the whole-program [`Analyzer`] that computes ω-path expressions of
//!   control flow graphs (Algorithm 2) and interprets them in the TF / MP
//!   algebras (§5.1), including the inter-procedural extension via procedure
//!   summaries and closure operators (§5.2, Appendix B);
//! * ranking-function synthesis utilities ([`synthesize_llrf`],
//!   [`validate_ranking`]) used by the operators, the baselines and the
//!   benchmark harness.
//!
//! # Quick start
//!
//! ```
//! use compact_analysis::Analyzer;
//! let analyzer = Analyzer::with_default_config();
//! let report = analyzer
//!     .analyze_source("proc main() { while (x > 0 && y > 0) { x := x - 1; y := y + x; } }")
//!     .unwrap();
//! assert!(report.proved_termination());
//! ```

#![warn(missing_docs)]

mod analyzer;
mod combine;
mod mp_exp;
mod phase;
mod ranking;

pub use analyzer::{Analyzer, AnalyzerConfig, RankingChoice, TerminationReport, Verdict};
pub use combine::{Both, FnOperator, Ordered};
pub use mp_exp::MpExp;
pub use phase::{
    cell_literals, count_satisfied_predicates, direction_predicates, is_invariant_predicate,
    phase_transition_graph, PhaseAnalysis, PhaseTransitionGraph,
};
pub use ranking::{
    synthesize_llrf, validate_ranking, LexicographicRankingFunction, MpLlrf, RankingComponent,
    RankingResult,
};
