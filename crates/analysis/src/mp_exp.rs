//! The `mpexp` operator: "termination analysis for free" (§6.1).
//!
//! A state `s` is mortal if, for some `k`, every state reachable from `s` in
//! `k` steps has no successor.  This condition is under-approximated with
//! the `exp` operator of §3.3:
//!
//! ```text
//! mpexp(F) ≜ ∃k. ∀Var', Var''. k ≥ 0 ∧ (exp(F, k) ⇒ ¬G)
//! where G ≜ F[Var ↦ Var', Var' ↦ Var'']
//! ```

use compact_logic::{Formula, Symbol, Term};
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, TransitionFormula};
use std::collections::BTreeMap;

/// The `mpexp` mortal precondition operator (§6.1).
///
/// It is monotone because `F` and `exp(F, k)` only occur in negative
/// positions of the defining formula and `exp` itself is monotone.
#[derive(Clone, Debug, Default)]
pub struct MpExp;

impl MpExp {
    /// Creates the operator.
    pub fn new() -> MpExp {
        MpExp
    }
}

impl MortalPreconditionOperator for MpExp {
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        let vars = tf.vars().to_vec();
        let k = Symbol::fresh("exp_k");
        let exp = tf.exp(solver, k);

        // G = F with Var ↦ Var' and Var' ↦ Var''.  Auxiliary symbols of F are
        // renamed fresh so the two copies of F do not share them; they are
        // universally quantified (¬∃aux.G ≡ ∀aux.¬G).
        let mut shift: BTreeMap<Symbol, Term> = BTreeMap::new();
        let mut second_primed: Vec<Symbol> = Vec::new();
        for v in &vars {
            let v1 = v.primed();
            let v2 = v1.primed();
            shift.insert(*v, Term::var(v1));
            shift.insert(v1, Term::var(v2));
            second_primed.push(v2);
        }
        let g_formula = tf.formula().clone();
        let mut aux_rename: BTreeMap<Symbol, Term> = BTreeMap::new();
        let allowed: Vec<Symbol> = vars
            .iter()
            .flat_map(|v| [*v, v.primed()])
            .collect();
        for s in g_formula.free_vars() {
            if !allowed.contains(&s) {
                aux_rename.insert(s, Term::var(Symbol::fresh(&format!("{}#g", s.name()))));
            }
        }
        let g = g_formula.substitute(&aux_rename).substitute(&shift);

        // Universally quantified variables: Var', Var'', G's auxiliaries and
        // exp's auxiliaries (there are none besides k, which is existential).
        let mut universals: Vec<Symbol> = vars.iter().map(Symbol::primed).collect();
        universals.extend(second_primed);
        for s in g.free_vars() {
            if !vars.contains(&s) && !universals.contains(&s) {
                universals.push(s);
            }
        }
        for s in exp.free_vars() {
            if !vars.contains(&s) && !universals.contains(&s) && s != k {
                universals.push(s);
            }
        }

        let body = Formula::and(vec![
            Formula::ge(Term::var(k), Term::constant(0)),
            Formula::forall(universals, Formula::implies(exp, Formula::not(g))),
        ]);
        let mp = Formula::exists(vec![k], body);
        solver.qe(&mp).simplify()
    }

    fn name(&self) -> &str {
        "exp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn tf(formula: &str, vars: &[&str]) -> TransitionFormula {
        let vs: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        TransitionFormula::new(parse_formula(formula).unwrap(), &vs)
    }

    #[test]
    fn example_6_1_even_countdown() {
        // while (x != 0) x := x - 2 : mortal iff x is a non-negative even
        // number.
        let solver = Solver::new();
        let t = tf("x != 0 && x' = x - 2", &["x"]);
        let mp = MpExp::new().mortal_precondition(&solver, &t);
        let expected = parse_formula("exists k. k >= 0 && x = 2*k").unwrap();
        assert!(solver.equivalent(&mp, &expected), "got {}", mp);
    }

    #[test]
    fn simple_countdown() {
        // while (x > 0) x := x - 1 terminates from every state.
        let solver = Solver::new();
        let t = tf("x > 0 && x' = x - 1", &["x"]);
        let mp = MpExp::new().mortal_precondition(&solver, &t);
        assert!(solver.is_valid(&mp), "got {}", mp);
    }

    #[test]
    fn diverging_loop_has_false_like_precondition() {
        // while (x >= 0) x := x + 1 diverges from every x >= 0.
        let solver = Solver::new();
        let t = tf("x >= 0 && x' = x + 1", &["x"]);
        let mp = MpExp::new().mortal_precondition(&solver, &t);
        assert!(solver.equivalent(&mp, &parse_formula("x < 0").unwrap()), "got {}", mp);
    }

    #[test]
    fn nondeterministic_guarded_walk() {
        // while (x > 0) x := x - 1 or x := x - 2: still terminating.
        let solver = Solver::new();
        let t = tf("x > 0 && (x' = x - 1 || x' = x - 2)", &["x"]);
        let mp = MpExp::new().mortal_precondition(&solver, &t);
        assert!(solver.is_valid(&mp), "got {}", mp);
    }

    #[test]
    fn mortal_preconditions_are_sound() {
        // For every operator output, no state satisfying it may start an
        // infinite concrete run (checked by bounded simulation on a loop with
        // a known divergence region).
        let solver = Solver::new();
        // Diverges exactly when x >= 10 (it re-enters the region forever).
        let t = tf("x >= 10 && x' = x + 1", &["x"]);
        let mp = MpExp::new().mortal_precondition(&solver, &t);
        // x = 12 diverges, so it must not satisfy mp.
        let at_12 = mp.substitute(
            &[(Symbol::intern("x"), Term::constant(12))].into_iter().collect(),
        );
        assert!(!solver.is_valid(&at_12));
        // x = 3 is mortal (the guard fails immediately).
        let at_3 = mp.substitute(
            &[(Symbol::intern("x"), Term::constant(3))].into_iter().collect(),
        );
        assert!(solver.is_valid(&at_3));
    }
}
