//! Phase analysis (§6.2, Algorithm 3).
//!
//! Phase analysis improves a base mortal precondition operator by splitting
//! the transitions of a loop into *phases*: cells of the partition induced by
//! the `F`-invariant direction predicates.  Any infinite execution of the
//! loop eventually stays inside one cell, so the loop terminates if every
//! cell does — and the cells are often much better behaved than the loop
//! itself (Figure 4 of the paper).

use compact_graph::{omega_path_expression, DiGraph};
use compact_logic::{Atom, Formula, Symbol, Term, Valuation};
use compact_regex::Interpretation;
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, MpAlgebra, TfAlgebra, TransitionFormula};

/// Maximum number of cells before phase analysis falls back to the base
/// operator.
const CELL_LIMIT: usize = 24;

/// The direction predicates `{x < x', x = x', x > x'}` for every program
/// variable (the predicate set `P` used by ComPACT, §7).
pub fn direction_predicates(vars: &[Symbol]) -> Vec<Formula> {
    let mut out = Vec::new();
    for v in vars {
        let x = Term::var(*v);
        let xp = Term::var(v.primed());
        out.push(Formula::lt(x.clone(), xp.clone()));
        out.push(Formula::eq(x.clone(), xp.clone()));
        out.push(Formula::gt(x, xp));
    }
    out
}

/// Checks whether a transition predicate is `F`-invariant: if some transition
/// of `F` satisfies `p`, then so does every subsequent transition, i.e.
/// `(F ∧ p) ∘ (F ∧ ¬p)` is inconsistent.
pub fn is_invariant_predicate(solver: &Solver, tf: &TransitionFormula, p: &Formula) -> bool {
    let vars = tf.vars();
    let with_p = TransitionFormula::new(
        Formula::and(vec![tf.formula().clone(), p.clone()]),
        vars,
    );
    let with_not_p = TransitionFormula::new(
        Formula::and(vec![tf.formula().clone(), Formula::not(p.clone())]),
        vars,
    );
    let composed = with_p.compose(&with_not_p);
    !solver.is_sat(composed.formula())
}

/// A phase transition graph (the output of Algorithm 3): a labeled control
/// flow graph whose vertices are the cells of the phase partition plus a
/// virtual start vertex.
pub struct PhaseTransitionGraph {
    /// The graph; node 0 is the virtual start vertex `s`.
    pub graph: DiGraph,
    /// The label of each edge (self-loops carry the cell formula, other
    /// edges carry the identity transition).
    pub labels: Vec<TransitionFormula>,
    /// The cell formulas, indexed by `node - 1`.
    pub cells: Vec<TransitionFormula>,
}

/// Constructs the reduced phase transition graph of Algorithm 3.
///
/// Returns `None` if the number of cells exceeds the internal limit.
pub fn phase_transition_graph(
    solver: &Solver,
    tf: &TransitionFormula,
    predicates: &[Formula],
) -> Option<PhaseTransitionGraph> {
    let vars = tf.vars().to_vec();
    // S: literals over the F-invariant predicates.
    let invariant: Vec<Formula> = predicates
        .iter()
        .filter(|p| is_invariant_predicate(solver, tf, p))
        .cloned()
        .collect();
    let literals: Vec<Formula> = invariant
        .iter()
        .cloned()
        .chain(invariant.iter().map(|p| Formula::not(p.clone())))
        .collect();

    // Enumerate the cells of the partition by repeated SAT queries.
    let mut cells: Vec<(TransitionFormula, usize)> = Vec::new(); // (cell, #positive literals)
    loop {
        let blocking = Formula::and(
            cells
                .iter()
                .map(|(c, _)| Formula::not(c.formula().clone()))
                .collect(),
        );
        let query = Formula::and(vec![tf.formula().clone(), blocking]);
        let Some(model) = solver.model(&query) else { break };
        // Complete the model over Var ∪ Var' so every literal evaluates.
        let mut complete = model.clone();
        for v in &vars {
            for sym in [*v, v.primed()] {
                if !complete.contains(&sym) {
                    complete.set(sym, 0.into());
                }
            }
        }
        let mut chosen = Vec::new();
        let mut positives = 0usize;
        for (idx, lit) in literals.iter().enumerate() {
            if eval_transition_formula(lit, &complete) {
                chosen.push(lit.clone());
                if idx < invariant.len() {
                    positives += 1;
                }
            }
        }
        let cell = TransitionFormula::new(
            Formula::and(std::iter::once(tf.formula().clone()).chain(chosen).collect()),
            &vars,
        );
        cells.push((cell, positives));
        if cells.len() > CELL_LIMIT {
            return None;
        }
    }

    // Sort by number of positive literals: invariant predicates can only be
    // acquired along an execution, so phase transitions go from fewer to more
    // positive literals.
    cells.sort_by_key(|(_, positives)| *positives);
    let cells: Vec<TransitionFormula> = cells.into_iter().map(|(c, _)| c).collect();
    let n = cells.len();

    // Compute the reduced phase transitions.
    let mut graph = DiGraph::with_nodes(n + 1); // node 0 = start vertex s
    let mut labels: Vec<TransitionFormula> = Vec::new();
    let mut adjacency: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let add_cell_edge =
        |graph: &mut DiGraph, labels: &mut Vec<TransitionFormula>, from: usize, to: usize, label: TransitionFormula| {
            graph.add_edge(from, to);
            labels.push(label);
        };
    for i in 1..n {
        for j in (0..i).rev() {
            if reachable(&adjacency, j, i) {
                continue;
            }
            let composed = cells[j].compose(&cells[i]);
            if solver.is_sat(composed.formula()) {
                adjacency[j][i] = true;
                add_cell_edge(
                    &mut graph,
                    &mut labels,
                    j + 1,
                    i + 1,
                    TransitionFormula::identity(&vars),
                );
            }
        }
    }
    // Connect the start vertex to cells with no incoming phase transition.
    for i in 0..n {
        let has_incoming = (0..n).any(|j| adjacency[j][i]);
        if !has_incoming {
            add_cell_edge(
                &mut graph,
                &mut labels,
                0,
                i + 1,
                TransitionFormula::identity(&vars),
            );
        }
    }
    // Self-loops labeled by the cells.
    for (i, cell) in cells.iter().enumerate() {
        add_cell_edge(&mut graph, &mut labels, i + 1, i + 1, cell.clone());
    }
    Some(PhaseTransitionGraph { graph, labels, cells })
}

fn reachable(adjacency: &[Vec<bool>], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let n = adjacency.len();
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if seen[cur] {
            continue;
        }
        seen[cur] = true;
        for (next, &edge) in adjacency[cur].iter().enumerate() {
            if edge && !seen[next] {
                stack.push(next);
            }
        }
    }
    false
}

/// Evaluates a quantifier-free transition predicate under a total valuation.
fn eval_transition_formula(f: &Formula, v: &Valuation) -> bool {
    f.eval(v).unwrap_or_else(|| {
        // The predicate mentions a symbol missing from the valuation; ground
        // the remaining symbols at zero.
        let mut extended = v.clone();
        for atom in f.atoms() {
            for sym in atom.vars() {
                if !extended.contains(&sym) {
                    extended.set(sym, 0.into());
                }
            }
        }
        f.eval(&extended).unwrap_or(false)
    })
}

/// The `mpPhase(P, mp)` combinator (§6.2): computes a mortal precondition for
/// a loop by interpreting the ω-path expression of its phase transition graph
/// with the base operator.
pub struct PhaseAnalysis<M> {
    base: M,
    predicates: Option<Vec<Formula>>,
    name: String,
}

impl<M: MortalPreconditionOperator> PhaseAnalysis<M> {
    /// Creates the combinator with the default direction predicates.
    pub fn new(base: M) -> PhaseAnalysis<M> {
        let name = format!("phase({})", base.name());
        PhaseAnalysis { base, predicates: None, name }
    }

    /// Creates the combinator with a custom predicate set.
    pub fn with_predicates(base: M, predicates: Vec<Formula>) -> PhaseAnalysis<M> {
        let name = format!("phase({})", base.name());
        PhaseAnalysis { base, predicates: Some(predicates), name }
    }
}

impl<M: MortalPreconditionOperator> MortalPreconditionOperator for PhaseAnalysis<M> {
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        let vars = tf.vars().to_vec();
        let predicates = self
            .predicates
            .clone()
            .unwrap_or_else(|| direction_predicates(&vars));
        let Some(ptg) = phase_transition_graph(solver, tf, &predicates) else {
            return self.base.mortal_precondition(solver, tf);
        };
        if ptg.cells.len() <= 1 {
            // A single phase: the phase graph adds nothing over the base
            // operator.
            return self.base.mortal_precondition(solver, tf);
        }
        let expr = omega_path_expression(&ptg.graph, 0);
        let algebra = TfAlgebra::new(solver, vars);
        let mp_algebra = MpAlgebra::new(solver, &self.base);
        let interp = Interpretation::new(&algebra, &mp_algebra, |edge: &usize| {
            ptg.labels[*edge].clone()
        });
        let phase_mp = interp.eval_omega(&expr).simplify();
        // Guaranteed improvement (Theorem 6.3) holds under the wp-stability
        // assumption; combining with the direct result keeps the operator
        // conservative even when that assumption is violated in practice.
        let direct = self.base.mortal_precondition(solver, tf);
        Formula::or(vec![phase_mp, direct]).simplify()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Convenience: the number of distinct direction predicates satisfied by a
/// transition valuation (useful for inspecting phase structure in examples).
pub fn count_satisfied_predicates(predicates: &[Formula], transition: &Valuation) -> usize {
    predicates
        .iter()
        .filter(|p| eval_transition_formula(p, transition))
        .count()
}

/// Returns the atoms of a cell that are not part of the original loop body
/// (i.e. the literals chosen by the phase partition).
pub fn cell_literals<'a>(cell: &'a TransitionFormula, body: &TransitionFormula) -> Vec<&'a Atom> {
    let body_atoms: Vec<&Atom> = body.formula().atoms();
    cell.formula()
        .atoms()
        .into_iter()
        .filter(|a| !body_atoms.contains(a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MpExp, MpLlrf, Ordered};
    use compact_logic::parse_formula;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tf(formula: &str, vars: &[&str]) -> TransitionFormula {
        let vs: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        TransitionFormula::new(parse_formula(formula).unwrap(), &vs)
    }

    /// The loop of Figure 4.
    fn figure4_loop() -> TransitionFormula {
        tf(
            "x > 0 && ((f >= 0 && x' = x - y && y' = y + 1 && f' = f + 1) || (f < 0 && x' = x + 1 && f' = f - 1 && y' = y))",
            &["x", "y", "f"],
        )
    }

    #[test]
    fn invariance_of_direction_predicates() {
        let solver = Solver::new();
        let t = figure4_loop();
        // f' > f ("f increases") is invariant: once the then-branch runs, the
        // else-branch can never run again.
        assert!(is_invariant_predicate(
            &solver,
            &t,
            &parse_formula("f < f'").unwrap()
        ));
        // x' < x is invariant as well (Figure 4c).
        assert!(is_invariant_predicate(
            &solver,
            &t,
            &parse_formula("x' < x").unwrap()
        ));
        // x' > x is NOT invariant: x can increase (else branch) and later the
        // then branch could decrease it? — no: once in the else branch f stays
        // negative, so x keeps increasing; but a then-branch transition with
        // y <= -1 also increases x and can be followed by a decreasing one.
        assert!(!is_invariant_predicate(
            &solver,
            &t,
            &parse_formula("x < x'").unwrap()
        ));
    }

    #[test]
    fn figure4_phase_graph_structure() {
        let solver = Solver::new();
        let t = figure4_loop();
        let ptg = phase_transition_graph(&solver, &t, &direction_predicates(t.vars()))
            .expect("within cell limit");
        // The paper's Figure 4c has three phases.
        assert_eq!(ptg.cells.len(), 3);
        // Start vertex has no incoming edges.
        assert_eq!(ptg.graph.predecessors(0).count(), 0);
        // Every cell has a self-loop.
        for i in 1..=ptg.cells.len() {
            assert!(ptg.graph.successors(i).any(|(_, dst)| dst == i));
        }
    }

    #[test]
    fn figure4_mortal_precondition() {
        // mpLLRF alone only proves x <= 0; phase analysis proves
        // x <= 0 ∨ f >= 0 (Example 6.5).
        let solver = Solver::new();
        let t = figure4_loop();
        let base = MpLlrf::new();
        let plain = base.mortal_precondition(&solver, &t);
        assert!(solver.equivalent(&plain, &parse_formula("x <= 0").unwrap()));
        let phased = PhaseAnalysis::new(MpLlrf::new()).mortal_precondition(&solver, &t);
        let expected = parse_formula("x <= 0 || f >= 0").unwrap();
        assert!(
            solver.equivalent(&phased, &expected),
            "phase analysis produced {}",
            phased
        );
    }

    #[test]
    #[ignore = "expensive (runs the full operator stack on several loops); run with --ignored"]
    fn phase_analysis_never_hurts() {
        let solver = Solver::new();
        let cases = [
            tf("x > 0 && x' = x - 1", &["x"]),
            tf("x != 0 && x' = x - 2", &["x"]),
            figure4_loop(),
        ];
        for t in &cases {
            let base = Ordered::new(MpLlrf::new(), MpExp::new());
            let plain = base.mortal_precondition(&solver, t);
            let phased = PhaseAnalysis::new(Ordered::new(MpLlrf::new(), MpExp::new()))
                .mortal_precondition(&solver, t);
            assert!(
                solver.entails(&plain, &phased),
                "phase analysis lost precision on {}",
                t
            );
        }
    }

    #[test]
    fn single_phase_falls_back_to_base() {
        let solver = Solver::new();
        let t = tf("x > 0 && x' = x - 1", &["x"]);
        let phased = PhaseAnalysis::new(MpLlrf::new()).mortal_precondition(&solver, &t);
        assert!(phased.is_true());
    }

    #[test]
    fn direction_predicate_helpers() {
        let preds = direction_predicates(&[sym("a"), sym("b")]);
        assert_eq!(preds.len(), 6);
        let mut v = Valuation::new();
        v.set(sym("a"), 1.into());
        v.set(sym("a'"), 2.into());
        v.set(sym("b"), 0.into());
        v.set(sym("b'"), 0.into());
        assert_eq!(count_satisfied_predicates(&preds, &v), 2);
    }
}
