//! Synthesis of linear and linear-lexicographic ranking functions, and the
//! `mpLLRF` mortal precondition operator (Example 3.2 of the paper).
//!
//! The synthesis follows the classic complete procedure (Alias–Darte–Feautrier
//! / Gonnord et al.): the transition formula is decomposed into a union of
//! transition polyhedra; at each round a linear function is found (via
//! Farkas' lemma and an exact LP) that is non-negative and non-increasing on
//! every remaining polyhedron and strictly decreasing on as many as possible;
//! the strictly decreasing polyhedra are removed and the process repeats.
//! The loop admits a linear lexicographic ranking function iff the process
//! empties the set.

use compact_arith::{ConstraintOp, Int, LinearProgram, LpResult, Rat};
use compact_logic::{Formula, Symbol, Term};
use compact_polyhedra::Polyhedron;
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, TransitionFormula};

/// Maximum number of DNF cubes used in the polyhedral decomposition.
const CUBE_LIMIT: usize = 128;

/// One component of a lexicographic ranking function: an affine function of
/// the program variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankingComponent {
    /// Coefficients of the program variables.
    pub coefficients: Vec<(Symbol, Rat)>,
    /// The constant offset.
    pub constant: Rat,
}

impl RankingComponent {
    /// Renders the component as a linear term with cleared denominators.
    pub fn to_term(&self) -> Term {
        let mut denom_lcm = self.constant.denom().clone();
        for (_, c) in &self.coefficients {
            denom_lcm = denom_lcm.lcm(c.denom());
        }
        let mut term = Term::constant((self.constant.numer() * &denom_lcm) / self.constant.denom());
        for (sym, c) in &self.coefficients {
            let coeff = (c.numer() * &denom_lcm) / c.denom();
            term = term + Term::var(*sym).scale(coeff);
        }
        term
    }
}

/// A linear lexicographic ranking function: a sequence of components, each of
/// which is bounded below and non-increasing on the transitions it ranks, and
/// strictly decreasing on the transitions removed at its round.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LexicographicRankingFunction {
    /// The components, in lexicographic order.
    pub components: Vec<RankingComponent>,
}

/// Result of ranking-function synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankingResult {
    /// A ranking function was found.
    Found(LexicographicRankingFunction),
    /// No linear lexicographic ranking function exists for the polyhedral
    /// abstraction of the loop.
    NotFound,
    /// The decomposition was too large to attempt synthesis.
    TooComplex,
}

impl RankingResult {
    /// Returns `true` if a ranking function was found.
    pub fn is_found(&self) -> bool {
        matches!(self, RankingResult::Found(_))
    }
}

/// Attempts to synthesize a linear lexicographic ranking function for a
/// transition formula.
///
/// When `max_components` is 1 the synthesis is restricted to plain linear
/// ranking functions (used for the paper's footnote-3 ablation).
pub fn synthesize_llrf(
    solver: &Solver,
    tf: &TransitionFormula,
    max_components: usize,
) -> RankingResult {
    let formula = tf.formula();
    if !solver.is_sat(formula) {
        // An empty relation is trivially ranked.
        return RankingResult::Found(LexicographicRankingFunction::default());
    }
    let Some(cubes) = solver.dnf_cubes(formula, CUBE_LIMIT) else {
        return RankingResult::TooComplex;
    };
    let polyhedra: Vec<Polyhedron> = cubes
        .iter()
        .map(|cube| Polyhedron::from_atoms(cube))
        .filter(|p| !p.is_empty())
        .collect();
    if polyhedra.is_empty() {
        return RankingResult::Found(LexicographicRankingFunction::default());
    }

    let vars: Vec<Symbol> = tf.vars().to_vec();
    let mut remaining: Vec<Polyhedron> = polyhedra;
    let mut components = Vec::new();
    while !remaining.is_empty() {
        if components.len() >= max_components {
            return RankingResult::NotFound;
        }
        match synthesize_component(&vars, &remaining) {
            None => return RankingResult::NotFound,
            Some((component, decreasing)) => {
                if decreasing.iter().all(|d| !d) {
                    // No progress: no transition polyhedron strictly
                    // decreases, so no LLRF exists (by completeness of the
                    // per-round LP).
                    return RankingResult::NotFound;
                }
                components.push(component);
                remaining = remaining
                    .into_iter()
                    .zip(decreasing)
                    .filter(|(_, dec)| !dec)
                    .map(|(p, _)| p)
                    .collect();
            }
        }
    }
    RankingResult::Found(LexicographicRankingFunction { components })
}

/// One round of the synthesis: find an affine function that is bounded below
/// and non-increasing on every polyhedron, strictly decreasing on as many as
/// possible.  Returns the component and a per-polyhedron "strictly
/// decreasing" flag.
fn synthesize_component(
    vars: &[Symbol],
    polyhedra: &[Polyhedron],
) -> Option<(RankingComponent, Vec<bool>)> {
    // Assemble the joint variable order of each polyhedron: the polyhedron
    // may mention Var, Var' and auxiliary symbols.
    let n = vars.len();

    // LP variable layout:
    //   0..n                  ranking coefficients r
    //   n                     ranking constant r0
    //   n+1 .. n+1+m          per-polyhedron epsilon (decrease amount)
    //   then one block of Farkas multipliers per (polyhedron, condition).
    let m = polyhedra.len();
    let mut num_lp_vars = n + 1 + m;
    // Pre-compute the constraint matrices of each polyhedron.
    struct PolyData {
        // Each row: (dense coefficients over its own variable order, rhs)
        rows: Vec<(Vec<Rat>, Rat)>,
        // Variable order of the polyhedron.
        order: Vec<Symbol>,
        // Index of each program variable / primed variable in `order`.
        var_pos: Vec<Option<usize>>,
        primed_pos: Vec<Option<usize>>,
        // LP indices of the multipliers for (bounded, decrease) conditions.
        bounded_multipliers: std::ops::Range<usize>,
        decrease_multipliers: std::ops::Range<usize>,
    }
    let mut data = Vec::new();
    for p in polyhedra {
        let order: Vec<Symbol> = p.vars().into_iter().collect();
        // A z <= b rows (equalities split in two).
        let mut rows: Vec<(Vec<Rat>, Rat)> = Vec::new();
        for c in p.constraints() {
            let (coeffs, constant) = c.term.to_dense(&order);
            // term <= 0  ⇔  coeffs·z <= -constant
            rows.push((coeffs.clone(), -constant.clone()));
            if c.is_eq {
                rows.push((
                    coeffs.iter().map(|v| -v).collect(),
                    constant,
                ));
            }
        }
        let var_pos: Vec<Option<usize>> = vars
            .iter()
            .map(|v| order.iter().position(|o| o == v))
            .collect();
        let primed_pos: Vec<Option<usize>> = vars
            .iter()
            .map(|v| {
                let p = v.primed();
                order.iter().position(|o| *o == p)
            })
            .collect();
        let bounded_multipliers = num_lp_vars..num_lp_vars + rows.len();
        num_lp_vars += rows.len();
        let decrease_multipliers = num_lp_vars..num_lp_vars + rows.len();
        num_lp_vars += rows.len();
        data.push(PolyData {
            rows,
            order,
            var_pos,
            primed_pos,
            bounded_multipliers,
            decrease_multipliers,
        });
    }

    let mut lp = LinearProgram::new(num_lp_vars);
    let zero_row = || vec![Rat::zero(); num_lp_vars];

    for (idx, pd) in data.iter().enumerate() {
        let eps_index = n + 1 + idx;
        // 0 <= eps <= 1
        let mut row = zero_row();
        row[eps_index] = Rat::one();
        lp.add_constraint(row.clone(), ConstraintOp::Ge, Rat::zero());
        lp.add_constraint(row, ConstraintOp::Le, Rat::one());

        // Multipliers are non-negative.
        for mult in pd.bounded_multipliers.clone().chain(pd.decrease_multipliers.clone()) {
            let mut row = zero_row();
            row[mult] = Rat::one();
            lp.add_constraint(row, ConstraintOp::Ge, Rat::zero());
        }

        // Condition 1 (bounded below): ∀z ∈ P: g·z + r0 >= 0 where g places
        // r on the unprimed variables.  Farkas: g = -λᵀA and r0 >= λᵀb.
        // Coefficient equations, one per column of the polyhedron.
        for (col, _sym) in pd.order.iter().enumerate() {
            let mut row = zero_row();
            // g_col = r_i if order[col] is program variable i, else 0.
            for (i, pos) in pd.var_pos.iter().enumerate() {
                if *pos == Some(col) {
                    row[i] = Rat::one();
                }
            }
            // + λᵀ A column
            for (r_idx, mult) in pd.bounded_multipliers.clone().enumerate() {
                row[mult] = pd.rows[r_idx].0[col].clone();
            }
            lp.add_constraint(row, ConstraintOp::Eq, Rat::zero());
        }
        // r0 - λᵀ b >= 0.
        let mut row = zero_row();
        row[n] = Rat::one();
        for (r_idx, mult) in pd.bounded_multipliers.clone().enumerate() {
            row[mult] = -pd.rows[r_idx].1.clone();
        }
        lp.add_constraint(row, ConstraintOp::Ge, Rat::zero());

        // Condition 2 (decrease by eps): ∀z ∈ P: g'·z - eps >= 0 where g'
        // places r on unprimed and -r on primed variables.
        for (col, _sym) in pd.order.iter().enumerate() {
            let mut row = zero_row();
            for (i, pos) in pd.var_pos.iter().enumerate() {
                if *pos == Some(col) {
                    row[i] = Rat::one();
                }
            }
            for (i, pos) in pd.primed_pos.iter().enumerate() {
                if *pos == Some(col) {
                    row[i] = &row[i] - &Rat::one();
                }
            }
            for (r_idx, mult) in pd.decrease_multipliers.clone().enumerate() {
                row[mult] = pd.rows[r_idx].0[col].clone();
            }
            lp.add_constraint(row, ConstraintOp::Eq, Rat::zero());
        }
        // -eps - λᵀ b >= 0  (the affine part of  g'·z - eps >= 0).
        let mut row = zero_row();
        row[eps_index] = Rat::from(-1);
        for (r_idx, mult) in pd.decrease_multipliers.clone().enumerate() {
            row[mult] = -pd.rows[r_idx].1.clone();
        }
        lp.add_constraint(row, ConstraintOp::Ge, Rat::zero());
    }

    // Objective: maximize the sum of the epsilons.
    let mut objective = vec![Rat::zero(); num_lp_vars];
    for idx in 0..m {
        objective[n + 1 + idx] = Rat::one();
    }
    match lp.maximize(&objective) {
        LpResult::Optimal { point, .. } => {
            let coefficients: Vec<(Symbol, Rat)> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, point[i].clone()))
                .collect();
            let constant = point[n].clone();
            let decreasing: Vec<bool> = (0..m)
                .map(|idx| point[n + 1 + idx].is_positive())
                .collect();
            Some((RankingComponent { coefficients, constant }, decreasing))
        }
        LpResult::Infeasible => None,
        LpResult::Unbounded => {
            // Cannot happen: every epsilon is capped at 1 and the objective
            // only involves epsilons.
            None
        }
    }
}

/// The `mpLLRF` mortal precondition operator of Example 3.2:
/// `true` if the loop has a linear lexicographic ranking function, and
/// `¬Pre(F)` otherwise.
#[derive(Clone, Debug)]
pub struct MpLlrf {
    /// Maximum number of lexicographic components (1 = plain linear ranking
    /// functions; used for the footnote-3 ablation).
    pub max_components: usize,
}

impl MpLlrf {
    /// The default operator (lexicographic, generous component bound).
    pub fn new() -> MpLlrf {
        MpLlrf { max_components: 8 }
    }

    /// A linear-only variant (at most one component).
    pub fn linear_only() -> MpLlrf {
        MpLlrf { max_components: 1 }
    }
}

impl Default for MpLlrf {
    fn default() -> Self {
        MpLlrf::new()
    }
}

impl MortalPreconditionOperator for MpLlrf {
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        match synthesize_llrf(solver, tf, self.max_components) {
            RankingResult::Found(_) => Formula::True,
            RankingResult::NotFound | RankingResult::TooComplex => {
                Formula::not(tf.pre(solver)).simplify()
            }
        }
    }

    fn name(&self) -> &str {
        if self.max_components == 1 {
            "LRF"
        } else {
            "LLRF"
        }
    }
}

/// Checks that a candidate ranking component certificate is valid for a
/// transition formula (used by tests and by the property-based suite).
pub fn validate_ranking(
    solver: &Solver,
    tf: &TransitionFormula,
    llrf: &LexicographicRankingFunction,
) -> bool {
    if llrf.components.is_empty() {
        return !solver.is_sat(tf.formula());
    }
    // Lexicographic validity: on every transition, some component strictly
    // decreases while being bounded below, and all earlier components are
    // non-increasing.
    let f = tf.closed_formula();
    let vars = tf.vars();
    let mut prefix_nonincreasing: Vec<Formula> = Vec::new();
    let mut cases = Vec::new();
    for component in &llrf.components {
        let term = component.to_term();
        let primed: Term = {
            let map: std::collections::BTreeMap<Symbol, Term> = vars
                .iter()
                .map(|v| (*v, Term::var(v.primed())))
                .collect();
            term.substitute(&map)
        };
        let decreases = Formula::and(vec![
            Formula::ge(term.clone(), Term::constant(Int::zero())),
            Formula::le(primed.clone(), term.clone() - 1),
        ]);
        cases.push(Formula::and(
            prefix_nonincreasing
                .iter()
                .cloned()
                .chain(std::iter::once(decreases))
                .collect(),
        ));
        prefix_nonincreasing.push(Formula::le(primed, term));
    }
    solver.entails(&f, &Formula::or(cases))
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tf(formula: &str, vars: &[&str]) -> TransitionFormula {
        let vs: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
        TransitionFormula::new(parse_formula(formula).unwrap(), &vs)
    }

    #[test]
    fn simple_countdown_has_lrf() {
        let solver = Solver::new();
        let t = tf("x >= 1 && x' = x - 1", &["x"]);
        let result = synthesize_llrf(&solver, &t, 1);
        match &result {
            RankingResult::Found(llrf) => {
                assert_eq!(llrf.components.len(), 1);
                assert!(validate_ranking(&solver, &t, llrf));
            }
            other => panic!("expected ranking function, got {:?}", other),
        }
    }

    #[test]
    fn figure1_inner_loop_has_lrf() {
        let solver = Solver::new();
        let t = tf(
            "m < step && n >= 0 && m' = m + 1 && n' = n - 1 && step' = step",
            &["m", "n", "step"],
        );
        let result = synthesize_llrf(&solver, &t, 4);
        assert!(result.is_found());
        // (step - m) is a ranking function; n is another one.  Either way the
        // operator proves termination from every state.
        let mp = MpLlrf::new().mortal_precondition(&solver, &t);
        assert!(mp.is_true());
    }

    #[test]
    fn nonterminating_loop_has_no_ranking() {
        let solver = Solver::new();
        let t = tf("x >= 0 && x' = x + 1", &["x"]);
        assert_eq!(synthesize_llrf(&solver, &t, 4), RankingResult::NotFound);
        let mp = MpLlrf::new().mortal_precondition(&solver, &t);
        // The mortal precondition is ¬Pre(F) = x < 0.
        assert!(solver.equivalent(&mp, &parse_formula("x < 0").unwrap()));
    }

    #[test]
    fn lexicographic_but_not_linear() {
        // A classic nested-counter loop: (x, y) decreases lexicographically
        // but no single linear function ranks both branches.
        let solver = Solver::new();
        let t = tf(
            "(x >= 1 && y >= 0 && x' = x - 1 && y' = n) || (x >= 0 && y >= 1 && x' = x && y' = y - 1)",
            &["x", "y", "n"],
        );
        assert_eq!(synthesize_llrf(&solver, &t, 1), RankingResult::NotFound);
        let result = synthesize_llrf(&solver, &t, 4);
        match &result {
            RankingResult::Found(llrf) => {
                assert!(llrf.components.len() >= 2);
                assert!(validate_ranking(&solver, &t, llrf));
            }
            other => panic!("expected lexicographic ranking, got {:?}", other),
        }
    }

    #[test]
    fn fibonacci_body_summary_is_ranked() {
        // Example 5.4: g >= 2 && (g' = g - 1 || g' = g - 2).
        let solver = Solver::new();
        let t = tf("g >= 2 && (g' = g - 1 || g' = g - 2)", &["g"]);
        let mp = MpLlrf::new().mortal_precondition(&solver, &t);
        assert!(mp.is_true());
    }

    #[test]
    fn empty_relation_is_trivially_ranked() {
        let solver = Solver::new();
        let t = tf("x >= 1 && x <= 0", &["x"]);
        assert!(synthesize_llrf(&solver, &t, 2).is_found());
        assert!(MpLlrf::new()
            .mortal_precondition(&solver, &t)
            .is_true());
    }

    #[test]
    fn phase_loop_needs_more_than_llrf() {
        // The loop of Figure 4 has no LLRF (the else branch can run forever).
        let solver = Solver::new();
        let t = tf(
            "x > 0 && ((f >= 0 && x' = x - y && y' = y + 1 && f' = f + 1) || (f < 0 && x' = x + 1 && f' = f - 1 && y' = y))",
            &["x", "y", "f"],
        );
        assert_eq!(synthesize_llrf(&solver, &t, 4), RankingResult::NotFound);
        let mp = MpLlrf::new().mortal_precondition(&solver, &t);
        assert!(solver.equivalent(&mp, &parse_formula("x <= 0").unwrap()));
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(MpLlrf::new().name(), "LLRF");
        assert_eq!(MpLlrf::linear_only().name(), "LRF");
    }
}
