//! Arbitrary-precision signed integers.
//!
//! [`Int`] is a compact, dependency-free big integer used throughout the
//! workspace for exact arithmetic: simplex pivoting, Farkas certificates,
//! Cooper quantifier elimination and polyhedral computations all produce
//! intermediate values that overflow machine integers, so every numeric
//! quantity in the analysis is an [`Int`] or a [`crate::Rat`].
//!
//! The representation is sign + little-endian `u32` limbs.  The algorithms
//! are deliberately simple (schoolbook multiplication, shift-subtract
//! division): operands in this code base are at most a few hundred bits.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use compact_arith::Int;
/// let a = Int::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// assert_eq!((&b % &a), Int::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    /// -1, 0 or 1.
    sign: i8,
    /// Little-endian magnitude; empty iff `sign == 0`; no trailing zero limb.
    mag: Vec<u32>,
}

impl Int {
    /// The integer zero.
    pub fn zero() -> Int {
        Int { sign: 0, mag: Vec::new() }
    }

    /// The integer one.
    pub fn one() -> Int {
        Int { sign: 1, mag: vec![1] }
    }

    /// The integer minus one.
    pub fn minus_one() -> Int {
        Int { sign: -1, mag: vec![1] }
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Returns `true` if this integer is one.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag == [1]
    }

    /// Returns `true` if this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// The sign of the integer as -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.sign as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int { sign: self.sign.abs(), mag: self.mag.clone() }
    }

    fn from_mag(sign: i8, mut mag: Vec<u32>) -> Int {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// Attempts to convert to `i64`, returning `None` on overflow.
    pub fn to_i64(&self) -> Option<i64> {
        if self.sign == 0 {
            return Some(0);
        }
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, limb) in self.mag.iter().enumerate() {
            v |= (*limb as u64) << (32 * i);
        }
        if self.sign > 0 {
            if v <= i64::MAX as u64 {
                Some(v as i64)
            } else {
                None
            }
        } else if v <= i64::MAX as u64 + 1 {
            Some((v as i128 * -1) as i64)
        } else {
            None
        }
    }

    /// Attempts to convert to `i32`, returning `None` on overflow.
    pub fn to_i32(&self) -> Option<i32> {
        self.to_i64().and_then(|v| i32::try_from(v).ok())
    }

    /// Attempts to convert to `f64` (approximate, for reporting only).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for limb in self.mag.iter().rev() {
            v = v * 4294967296.0 + *limb as f64;
        }
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.len() {
            let s = long[i] as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Computes `a - b`, requiring `a >= b` (by magnitude).
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Int::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for i in 0..a.len() {
            let mut d = a[i] as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn bit_len_mag(mag: &[u32]) -> usize {
        match mag.last() {
            None => 0,
            Some(top) => 32 * (mag.len() - 1) + (32 - top.leading_zeros() as usize),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        Int::bit_len_mag(&self.mag)
    }

    fn shl_mag(mag: &[u32], bits: usize) -> Vec<u32> {
        if mag.is_empty() {
            return Vec::new();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(mag);
        } else {
            let mut carry: u32 = 0;
            for &limb in mag {
                out.push((limb << bit_shift) | carry);
                carry = (limb >> (32 - bit_shift)) as u32;
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn get_bit(mag: &[u32], bit: usize) -> bool {
        let limb = bit / 32;
        if limb >= mag.len() {
            return false;
        }
        (mag[limb] >> (bit % 32)) & 1 == 1
    }

    /// Divides magnitudes, returning (quotient, remainder).
    ///
    /// Uses a single-limb fast path and shift-subtract long division in the
    /// general case.  Division by zero panics.
    fn divrem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        match Int::cmp_mag(a, b) {
            Ordering::Less => return (Vec::new(), a.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if b.len() == 1 {
            // Single-limb divisor.
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem: u64 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 { Vec::new() } else { vec![rem as u32] };
            return (q, r);
        }
        // Shift-subtract long division, one bit at a time.
        let n = Int::bit_len_mag(a);
        let m = Int::bit_len_mag(b);
        let mut rem: Vec<u32> = Vec::new();
        let mut quo = vec![0u32; a.len()];
        let mut shift = n - 1;
        // Initialize remainder with the top m-1 bits of a.
        // Simpler: process all bits from the top.
        rem.clear();
        for bit in (0..n).rev() {
            // rem = rem << 1 | a[bit]
            rem = Int::shl_mag(&rem, 1);
            if Int::get_bit(a, bit) {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Int::cmp_mag(&rem, b) != Ordering::Less {
                rem = Int::sub_mag(&rem, b);
                let limb = bit / 32;
                quo[limb] |= 1 << (bit % 32);
            }
            if bit == 0 {
                break;
            }
            shift = shift.saturating_sub(1);
        }
        let _ = (m, shift);
        while quo.last() == Some(&0) {
            quo.pop();
        }
        (quo, rem)
    }

    /// Truncating division with remainder: `self = q * other + r` with
    /// `|r| < |other|` and `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        let (q_mag, r_mag) = Int::divrem_mag(&self.mag, &other.mag);
        let q_sign = if q_mag.is_empty() { 0 } else { self.sign * other.sign };
        let r_sign = if r_mag.is_empty() { 0 } else { self.sign };
        (Int::from_mag(q_sign, q_mag), Int::from_mag(r_sign, r_mag))
    }

    /// Floor division: rounds towards negative infinity.
    pub fn div_floor(&self, other: &Int) -> Int {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.sign * other.sign) < 0 {
            q - Int::one()
        } else {
            q
        }
    }

    /// Euclidean remainder in `[0, |other|)`.
    pub fn rem_euclid(&self, other: &Int) -> Int {
        let r = self % other;
        if r.is_negative() {
            r + other.abs()
        } else {
            r
        }
    }

    /// Ceiling division: rounds towards positive infinity.
    pub fn div_ceil(&self, other: &Int) -> Int {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.sign * other.sign) > 0 {
            q + Int::one()
        } else {
            q
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &Int) -> Int {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Least common multiple (always non-negative); `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &Int) -> Int {
        if self.is_zero() || other.is_zero() {
            return Int::zero();
        }
        let g = self.gcd(other);
        (&self.abs() / &g) * other.abs()
    }

    /// Raises this integer to a small non-negative power.
    pub fn pow(&self, exp: u32) -> Int {
        let mut result = Int::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        result
    }

    /// Returns the minimum of two integers.
    pub fn min(self, other: Int) -> Int {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the maximum of two integers.
    pub fn max(self, other: Int) -> Int {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                let sign: i8 = if v > 0 { 1 } else if v < 0 { -1 } else { 0 };
                let mut mag = Vec::new();
                let mut m = (v as i128).unsigned_abs();
                while m > 0 {
                    mag.push((m & 0xFFFF_FFFF) as u32);
                    m >>= 32;
                }
                Int { sign, mag }
            }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                let sign: i8 = if v > 0 { 1 } else { 0 };
                let mut mag = Vec::new();
                let mut m = v as u128;
                while m > 0 {
                    mag.push((m & 0xFFFF_FFFF) as u32);
                    m >>= 32;
                }
                Int { sign, mag }
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            o => return o,
        }
        let mag_cmp = Int::cmp_mag(&self.mag, &other.mag);
        if self.sign < 0 {
            mag_cmp.reverse()
        } else {
            mag_cmp
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int { sign: -self.sign, mag: self.mag }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int { sign: -self.sign, mag: self.mag.clone() }
    }
}

impl Add<&Int> for &Int {
    type Output = Int;
    fn add(self, other: &Int) -> Int {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if self.sign == other.sign {
            Int::from_mag(self.sign, Int::add_mag(&self.mag, &other.mag))
        } else {
            match Int::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_mag(self.sign, Int::sub_mag(&self.mag, &other.mag)),
                Ordering::Less => Int::from_mag(other.sign, Int::sub_mag(&other.mag, &self.mag)),
            }
        }
    }
}

impl Sub<&Int> for &Int {
    type Output = Int;
    fn sub(self, other: &Int) -> Int {
        self + &(-other)
    }
}

impl Mul<&Int> for &Int {
    type Output = Int;
    fn mul(self, other: &Int) -> Int {
        if self.is_zero() || other.is_zero() {
            return Int::zero();
        }
        Int::from_mag(self.sign * other.sign, Int::mul_mag(&self.mag, &other.mag))
    }
}

impl Div<&Int> for &Int {
    type Output = Int;
    fn div(self, other: &Int) -> Int {
        self.div_rem(other).0
    }
}

impl Rem<&Int> for &Int {
    type Output = Int;
    fn rem(self, other: &Int) -> Int {
        self.div_rem(other).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                (&self).$method(&other)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, other: &Int) -> Int {
                (&self).$method(other)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                self.$method(&other)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, other: &Int) {
        *self = &*self + other;
    }
}

impl AddAssign<Int> for Int {
    fn add_assign(&mut self, other: Int) {
        *self = &*self + &other;
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, other: &Int) {
        *self = &*self - other;
    }
}

impl SubAssign<Int> for Int {
    fn sub_assign(&mut self, other: Int) {
        *self = &*self - &other;
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, other: &Int) {
        *self = &*self * other;
    }
}

impl MulAssign<Int> for Int {
    fn mul_assign(&mut self, other: Int) {
        *self = &*self * &other;
    }
}

impl Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}

impl Product for Int {
    fn product<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::one(), |a, b| a * b)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9.
        let mut digits: Vec<u32> = Vec::new();
        let chunk = Int::from(1_000_000_000u32);
        let mut cur = self.abs();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk);
            digits.push(r.to_i64().unwrap_or(0) as u32);
            cur = q;
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        write!(f, "{}", digits.last().unwrap())?;
        for d in digits.iter().rev().skip(1) {
            write!(f, "{:09}", d)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// Error returned when parsing an [`Int`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError {
    text: String,
}

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal `{}`", self.text)
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError { text: s.to_string() });
        }
        let ten = Int::from(10u32);
        let mut value = Int::zero();
        for b in digits.bytes() {
            value = &value * &ten + Int::from((b - b'0') as u32);
        }
        if neg {
            value = -value;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Int {
        Int::from(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(int(2) + int(3), int(5));
        assert_eq!(int(2) - int(3), int(-1));
        assert_eq!(int(-7) * int(6), int(-42));
        assert_eq!(int(0) + int(0), Int::zero());
        assert_eq!(int(5) + int(-5), Int::zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for v in [0i128, 1, -1, 42, -100000, i64::MAX as i128, i64::MIN as i128] {
            let i = int(v);
            assert_eq!(i.to_string(), v.to_string());
            assert_eq!(i.to_string().parse::<Int>().unwrap(), i);
        }
    }

    #[test]
    fn large_multiplication() {
        let a: Int = "123456789012345678901234567890".parse().unwrap();
        let b: Int = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn division_identities() {
        let a: Int = "340282366920938463463374607431768211456".parse().unwrap();
        let b: Int = "18446744073709551617".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn signed_division() {
        assert_eq!(int(7).div_rem(&int(2)), (int(3), int(1)));
        assert_eq!(int(-7).div_rem(&int(2)), (int(-3), int(-1)));
        assert_eq!(int(7).div_rem(&int(-2)), (int(-3), int(1)));
        assert_eq!(int(-7).div_rem(&int(-2)), (int(3), int(-1)));
        assert_eq!(int(-7).div_floor(&int(2)), int(-4));
        assert_eq!(int(7).div_floor(&int(2)), int(3));
        assert_eq!(int(-7).div_ceil(&int(2)), int(-3));
        assert_eq!(int(7).div_ceil(&int(2)), int(4));
        assert_eq!(int(-7).rem_euclid(&int(3)), int(2));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(int(12).gcd(&int(18)), int(6));
        assert_eq!(int(-12).gcd(&int(18)), int(6));
        assert_eq!(int(0).gcd(&int(5)), int(5));
        assert_eq!(int(4).lcm(&int(6)), int(12));
        assert_eq!(int(0).lcm(&int(6)), int(0));
    }

    #[test]
    fn pow_and_bitlen() {
        assert_eq!(int(2).pow(100).to_string(), "1267650600228229401496703205376");
        assert_eq!(int(0).bit_len(), 0);
        assert_eq!(int(1).bit_len(), 1);
        assert_eq!(int(255).bit_len(), 8);
        assert_eq!(int(256).bit_len(), 9);
    }

    #[test]
    fn ordering() {
        assert!(int(-5) < int(-4));
        assert!(int(-1) < int(0));
        assert!(int(0) < int(1));
        let big: Int = "99999999999999999999999".parse().unwrap();
        assert!(int(5) < big);
        assert!(-big.clone() < int(5));
        assert!(int(3).max(int(7)) == int(7));
        assert!(int(3).min(int(7)) == int(3));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(int(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(int(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!((int(i64::MAX as i128) + int(1)).to_i64(), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = int(5).div_rem(&Int::zero());
    }
}
