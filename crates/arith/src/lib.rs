//! Exact arithmetic substrate for the ComPACT termination analyzer.
//!
//! This crate provides the numeric foundation used by every other crate in
//! the workspace:
//!
//! * [`Int`] — arbitrary-precision signed integers;
//! * [`Rat`] — exact rational numbers;
//! * [`QVec`] / [`QMat`] — dense rational vectors and matrices with Gaussian
//!   elimination (rank, solving, null spaces);
//! * [`LinearProgram`] — an exact two-phase simplex LP solver over free
//!   rational variables.
//!
//! The paper's implementation relies on GMP numerals inside Z3 and on an LP
//! solver for ranking-function synthesis; this crate is the from-scratch
//! replacement for both.
//!
//! # Examples
//!
//! ```
//! use compact_arith::{Int, Rat};
//! let big = Int::from(10u32).pow(30) + Int::one();
//! assert_eq!(big.to_string(), "1000000000000000000000000000001");
//! let half = Rat::new(Int::one(), Int::from(2));
//! assert_eq!((&half + &half), Rat::one());
//! ```

#![warn(missing_docs)]

mod int;
mod linear;
mod rat;
mod simplex;

pub use int::{Int, ParseIntError};
pub use linear::{QMat, QVec};
pub use rat::{ParseRatError, Rat};
pub use simplex::{ConstraintOp, LinearConstraint, LinearProgram, LpResult};
