//! Dense exact-rational vectors, matrices and Gaussian elimination.
//!
//! These are the workhorses behind the affine-hull computation
//! (`compact-polyhedra`) and Farkas-based ranking-function synthesis
//! (`compact-analysis`).

use crate::Rat;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense vector of rationals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QVec {
    entries: Vec<Rat>,
}

impl QVec {
    /// Creates a zero vector of the given dimension.
    pub fn zeros(dim: usize) -> QVec {
        QVec { entries: vec![Rat::zero(); dim] }
    }

    /// Creates a vector from its entries.
    pub fn from_entries(entries: Vec<Rat>) -> QVec {
        QVec { entries }
    }

    /// The dimension of the vector.
    pub fn dim(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.entries.iter().all(Rat::is_zero)
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &Rat> {
        self.entries.iter()
    }

    /// The dot product of two vectors of equal dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &QVec) -> Rat {
        assert_eq!(self.dim(), other.dim(), "dot product dimension mismatch");
        self.entries
            .iter()
            .zip(other.entries.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &QVec) -> QVec {
        assert_eq!(self.dim(), other.dim());
        QVec {
            entries: self
                .entries
                .iter()
                .zip(other.entries.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Component-wise difference.
    pub fn sub(&self, other: &QVec) -> QVec {
        assert_eq!(self.dim(), other.dim());
        QVec {
            entries: self
                .entries
                .iter()
                .zip(other.entries.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: &Rat) -> QVec {
        QVec { entries: self.entries.iter().map(|a| a * k).collect() }
    }

    /// Consumes the vector and returns its entries.
    pub fn into_entries(self) -> Vec<Rat> {
        self.entries
    }
}

impl Index<usize> for QVec {
    type Output = Rat;
    fn index(&self, i: usize) -> &Rat {
        &self.entries[i]
    }
}

impl IndexMut<usize> for QVec {
    fn index_mut(&mut self, i: usize) -> &mut Rat {
        &mut self.entries[i]
    }
}

impl fmt::Display for QVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", e)?;
        }
        write!(f, "]")
    }
}

/// A dense row-major matrix of rationals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QMat {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl QMat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> QMat {
        QMat { rows, cols, data: vec![Rat::zero(); rows * cols] }
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: Vec<Vec<Rat>>) -> QMat {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged matrix rows");
            data.extend(r);
        }
        QMat { rows: nrows, cols: ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> &Rat {
        &self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: Rat) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a vector.
    pub fn row(&self, r: usize) -> QVec {
        QVec::from_entries(self.data[r * self.cols..(r + 1) * self.cols].to_vec())
    }

    /// In-place reduction to reduced row echelon form; returns the pivot
    /// columns (one per non-zero row, in order).
    pub fn row_reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row >= self.rows {
                break;
            }
            // Find a row with a non-zero entry in this column.
            let mut sel = None;
            for r in pivot_row..self.rows {
                if !self.get(r, col).is_zero() {
                    sel = Some(r);
                    break;
                }
            }
            let Some(sel) = sel else { continue };
            self.swap_rows(pivot_row, sel);
            // Normalize the pivot row.
            let inv = self.get(pivot_row, col).recip();
            for c in col..self.cols {
                let v = self.get(pivot_row, c) * &inv;
                self.set(pivot_row, c, v);
            }
            // Eliminate the column from every other row.
            for r in 0..self.rows {
                if r == pivot_row || self.get(r, col).is_zero() {
                    continue;
                }
                let factor = self.get(r, col).clone();
                for c in col..self.cols {
                    let v = self.get(r, c) - &(self.get(pivot_row, c) * &factor);
                    self.set(r, c, v);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// The rank of the matrix.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.row_reduce().len()
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Solves `A x = b`, returning one solution if the system is consistent.
    pub fn solve(&self, b: &QVec) -> Option<QVec> {
        assert_eq!(b.dim(), self.rows, "rhs dimension mismatch");
        // Build the augmented matrix [A | b] and reduce.
        let mut aug = QMat::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                aug.set(r, c, self.get(r, c).clone());
            }
            aug.set(r, self.cols, b[r].clone());
        }
        let pivots = aug.row_reduce();
        // Inconsistent if a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = QVec::zeros(self.cols);
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = aug.get(row, self.cols).clone();
        }
        Some(x)
    }

    /// Returns a basis of the null space `{x : A x = 0}`.
    pub fn nullspace_basis(&self) -> Vec<QVec> {
        let mut m = self.clone();
        let pivots = m.row_reduce();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set.contains(&free) {
                continue;
            }
            let mut v = QVec::zeros(self.cols);
            v[free] = Rat::one();
            for (row, &pc) in pivots.iter().enumerate() {
                v[pc] = -(m.get(row, free).clone());
            }
            basis.push(v);
        }
        basis
    }
}

impl fmt::Display for QMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            writeln!(f, "{}", self.row(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    fn ri(n: i64) -> Rat {
        Rat::from(n)
    }

    #[test]
    fn dot_and_scale() {
        let a = QVec::from_entries(vec![ri(1), ri(2), ri(3)]);
        let b = QVec::from_entries(vec![ri(4), ri(5), ri(6)]);
        assert_eq!(a.dot(&b), ri(32));
        assert_eq!(a.scale(&r(1, 2))[1], ri(1));
        assert!(QVec::zeros(3).is_zero());
        assert!(!a.is_zero());
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn row_reduce_identity() {
        let mut m = QMat::from_rows(vec![
            vec![ri(2), ri(0)],
            vec![ri(0), ri(3)],
        ]);
        let pivots = m.row_reduce();
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(*m.get(0, 0), ri(1));
        assert_eq!(*m.get(1, 1), ri(1));
    }

    #[test]
    fn solve_consistent() {
        // x + y = 3, x - y = 1 => x = 2, y = 1
        let a = QMat::from_rows(vec![
            vec![ri(1), ri(1)],
            vec![ri(1), ri(-1)],
        ]);
        let b = QVec::from_entries(vec![ri(3), ri(1)]);
        let x = a.solve(&b).unwrap();
        assert_eq!(x[0], ri(2));
        assert_eq!(x[1], ri(1));
    }

    #[test]
    fn solve_inconsistent() {
        let a = QMat::from_rows(vec![
            vec![ri(1), ri(1)],
            vec![ri(2), ri(2)],
        ]);
        let b = QVec::from_entries(vec![ri(1), ri(3)]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn nullspace() {
        // x + y + z = 0 has a 2-dimensional null space.
        let a = QMat::from_rows(vec![vec![ri(1), ri(1), ri(1)]]);
        let basis = a.nullspace_basis();
        assert_eq!(basis.len(), 2);
        for v in &basis {
            assert!(a.row(0).dot(v).is_zero());
        }
        assert_eq!(a.rank(), 1);
    }

    #[test]
    fn rank_full_and_deficient() {
        let full = QMat::from_rows(vec![vec![ri(1), ri(0)], vec![ri(0), ri(1)]]);
        assert_eq!(full.rank(), 2);
        let deficient = QMat::from_rows(vec![vec![ri(1), ri(2)], vec![ri(2), ri(4)]]);
        assert_eq!(deficient.rank(), 1);
    }
}
