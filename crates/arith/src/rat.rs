//! Exact rational numbers built on [`Int`].

use crate::Int;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number with an [`Int`] numerator and positive
/// denominator, kept in lowest terms.
///
/// # Examples
///
/// ```
/// use compact_arith::Rat;
/// let a = Rat::new(1.into(), 3.into());
/// let b = Rat::new(1.into(), 6.into());
/// assert_eq!((a + b), Rat::new(1.into(), 2.into()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    den: Int,
}

impl Rat {
    /// Constructs a rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        if num.is_zero() {
            return Rat { num: Int::zero(), den: Int::one() };
        }
        let g = num.gcd(&den);
        Rat { num: &num / &g, den: &den / &g }
    }

    /// The rational zero.
    pub fn zero() -> Rat {
        Rat { num: Int::zero(), den: Int::one() }
    }

    /// The rational one.
    pub fn one() -> Rat {
        Rat { num: Int::one(), den: Int::one() }
    }

    /// Constructs a rational from an integer.
    pub fn from_int(i: Int) -> Rat {
        Rat { num: i, den: Int::one() }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// The sign as -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if this rational is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Floor: the greatest integer `<= self`.
    pub fn floor(&self) -> Int {
        self.num.div_floor(&self.den)
    }

    /// Ceiling: the least integer `>= self`.
    pub fn ceil(&self) -> Int {
        self.num.div_ceil(&self.den)
    }

    /// Converts to `f64` (approximate; reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Returns the minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<Int> for Rat {
    fn from(i: Int) -> Rat {
        Rat::from_int(i)
    }
}

impl From<i64> for Rat {
    fn from(i: i64) -> Rat {
        Rat::from_int(Int::from(i))
    }
}

impl From<i32> for Rat {
    fn from(i: i32) -> Rat {
        Rat::from_int(Int::from(i))
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -(&self.num), den: self.den.clone() }
    }
}

impl Add<&Rat> for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        Rat::new(
            &self.num * &other.den + &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Sub<&Rat> for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        Rat::new(
            &self.num * &other.den - &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Mul<&Rat> for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div<&Rat> for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero rational");
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: &Rat) -> Rat {
                (&self).$method(other)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                self.$method(&other)
            }
        }
    };
}

forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        *self = &*self + other;
    }
}

impl AddAssign<Rat> for Rat {
    fn add_assign(&mut self, other: Rat) {
        *self = &*self + &other;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        *self = &*self - other;
    }
}

impl SubAssign<Rat> for Rat {
    fn sub_assign(&mut self, other: Rat) {
        *self = &*self - &other;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        *self = &*self * other;
    }
}

impl MulAssign<Rat> for Rat {
    fn mul_assign(&mut self, other: Rat) {
        *self = &*self * &other;
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::zero(), |a, b| a + b)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// Error returned when parsing a [`Rat`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError {
    text: String,
}

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal `{}`", self.text)
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRatError { text: s.to_string() };
        match s.split_once('/') {
            Some((n, d)) => {
                let n: Int = n.trim().parse().map_err(|_| err())?;
                let d: Int = d.trim().parse().map_err(|_| err())?;
                if d.is_zero() {
                    return Err(err());
                }
                Ok(Rat::new(n, d))
            }
            None => {
                let n: Int = s.trim().parse().map_err(|_| err())?;
                Ok(Rat::from_int(n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rat {
        Rat::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), Rat::zero());
        assert!(rat(2, -4).denom().is_positive());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(2, 3) / rat(4, 3), rat(1, 2));
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn ordering_and_rounding() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert_eq!(rat(7, 2).floor(), Int::from(3));
        assert_eq!(rat(7, 2).ceil(), Int::from(4));
        assert_eq!(rat(-7, 2).floor(), Int::from(-4));
        assert_eq!(rat(-7, 2).ceil(), Int::from(-3));
        assert_eq!(rat(4, 2).floor(), Int::from(2));
        assert_eq!(rat(4, 2).ceil(), Int::from(2));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["1/2", "-3/4", "5", "-7", "0"] {
            let r: Rat = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert!("1/0".parse::<Rat>().is_err());
        assert!("x".parse::<Rat>().is_err());
    }

    #[test]
    fn recip() {
        assert_eq!(rat(2, 3).recip(), rat(3, 2));
        assert_eq!(rat(-2, 3).recip(), rat(-3, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(Int::one(), Int::zero());
    }
}
