//! An exact two-phase simplex solver for linear programs over the rationals.
//!
//! Variables are *free* (unbounded in both directions); the solver handles
//! the translation into standard form internally (splitting each free
//! variable into a difference of non-negative variables, adding slack and
//! artificial variables).  Bland's pivoting rule guarantees termination.
//!
//! The solver is used in three places in the workspace:
//!
//! * feasibility of conjunctions of linear constraints over the rationals,
//!   as the relaxation step of the branch-and-bound LIA theory solver in
//!   `compact-smt`;
//! * optimization queries for branch-and-bound and for bound inference;
//! * Farkas-lemma constraint systems in the ranking-function synthesis of
//!   `compact-analysis`.

use crate::Rat;
use std::fmt;

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ConstraintOp {
    /// `a·x <= b`
    Le,
    /// `a·x >= b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A linear constraint `a·x (op) b` over `num_vars` free variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinearConstraint {
    /// Dense coefficient vector (length = number of LP variables).
    pub coeffs: Vec<Rat>,
    /// The comparison operator.
    pub op: ConstraintOp,
    /// The right-hand side constant.
    pub rhs: Rat,
}

impl LinearConstraint {
    /// Creates a new constraint.
    pub fn new(coeffs: Vec<Rat>, op: ConstraintOp, rhs: Rat) -> LinearConstraint {
        LinearConstraint { coeffs, op, rhs }
    }

    /// Evaluates the constraint at a point.
    pub fn satisfied_by(&self, point: &[Rat]) -> bool {
        let lhs: Rat = self
            .coeffs
            .iter()
            .zip(point.iter())
            .map(|(a, x)| a * x)
            .sum();
        match self.op {
            ConstraintOp::Le => lhs <= self.rhs,
            ConstraintOp::Ge => lhs >= self.rhs,
            ConstraintOp::Eq => lhs == self.rhs,
        }
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}*x{}", c, i)?;
        }
        let op = match self.op {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        };
        write!(f, " {} {}", op, self.rhs)
    }
}

/// The result of solving a linear program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LpResult {
    /// The constraint system has no solution.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// An optimal solution was found.
    Optimal {
        /// The optimal objective value.
        value: Rat,
        /// A point attaining the optimum (one entry per LP variable).
        point: Vec<Rat>,
    },
}

impl LpResult {
    /// Returns the optimal point, if any.
    pub fn point(&self) -> Option<&[Rat]> {
        match self {
            LpResult::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// Returns the optimal value, if any.
    pub fn value(&self) -> Option<&Rat> {
        match self {
            LpResult::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// A linear program over free rational variables.
///
/// # Examples
///
/// ```
/// use compact_arith::{LinearProgram, ConstraintOp, Rat, LpResult};
/// // maximize x + y subject to x <= 2, y <= 3.
/// let mut lp = LinearProgram::new(2);
/// lp.add_constraint(vec![Rat::one(), Rat::zero()], ConstraintOp::Le, Rat::from(2));
/// lp.add_constraint(vec![Rat::zero(), Rat::one()], ConstraintOp::Le, Rat::from(3));
/// match lp.maximize(&[Rat::one(), Rat::one()]) {
///     LpResult::Optimal { value, .. } => assert_eq!(value, Rat::from(5)),
///     other => panic!("unexpected {:?}", other),
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    num_vars: usize,
    constraints: Vec<LinearConstraint>,
}

impl LinearProgram {
    /// Creates an empty linear program with `num_vars` free variables.
    pub fn new(num_vars: usize) -> LinearProgram {
        LinearProgram { num_vars, constraints: Vec::new() }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Adds the constraint `coeffs · x (op) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables.
    pub fn add_constraint(&mut self, coeffs: Vec<Rat>, op: ConstraintOp, rhs: Rat) {
        assert_eq!(coeffs.len(), self.num_vars, "constraint arity mismatch");
        self.constraints.push(LinearConstraint::new(coeffs, op, rhs));
    }

    /// Maximizes `objective · x` over the feasible region.
    pub fn maximize(&self, objective: &[Rat]) -> LpResult {
        assert_eq!(objective.len(), self.num_vars, "objective arity mismatch");
        Tableau::solve(self, objective, true)
    }

    /// Minimizes `objective · x` over the feasible region.
    pub fn minimize(&self, objective: &[Rat]) -> LpResult {
        assert_eq!(objective.len(), self.num_vars, "objective arity mismatch");
        match Tableau::solve(self, &objective.iter().map(|c| -c).collect::<Vec<_>>(), true) {
            LpResult::Optimal { value, point } => LpResult::Optimal { value: -value, point },
            other => other,
        }
    }

    /// Returns `true` if the constraint system has a rational solution.
    pub fn is_feasible(&self) -> bool {
        self.find_point().is_some()
    }

    /// Returns a rational point satisfying all constraints, if one exists.
    pub fn find_point(&self) -> Option<Vec<Rat>> {
        let zero_obj = vec![Rat::zero(); self.num_vars];
        match Tableau::solve(self, &zero_obj, true) {
            LpResult::Optimal { point, .. } => Some(point),
            LpResult::Unbounded => unreachable!("zero objective cannot be unbounded"),
            LpResult::Infeasible => None,
        }
    }
}

/// Internal simplex tableau.
struct Tableau {
    /// `rows[i]` has length `ncols + 1`; the last entry is the rhs.
    rows: Vec<Vec<Rat>>,
    /// Reduced-cost row (length `ncols`).
    obj: Vec<Rat>,
    /// Basic variable (column index) for each row.
    basis: Vec<usize>,
    ncols: usize,
    /// First artificial column index (artificials occupy `[art_start, ncols)`).
    art_start: usize,
    /// Number of original LP variables.
    num_vars: usize,
}

impl Tableau {
    fn solve(lp: &LinearProgram, objective: &[Rat], _maximize: bool) -> LpResult {
        let n = lp.num_vars;
        let m = lp.constraints.len();
        // Column layout: [pos_0, neg_0, ..., pos_{n-1}, neg_{n-1} | slacks | artificials]
        let num_struct = 2 * n;
        let num_slack = lp
            .constraints
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();
        let art_start = num_struct + num_slack;
        // One artificial per row keeps the construction simple.
        let ncols = art_start + m;

        let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        let mut slack_idx = num_struct;
        for (i, c) in lp.constraints.iter().enumerate() {
            let mut row = vec![Rat::zero(); ncols + 1];
            let flip = c.rhs.is_negative();
            let sign = if flip { Rat::from(-1) } else { Rat::one() };
            for (j, a) in c.coeffs.iter().enumerate() {
                let v = a * &sign;
                row[2 * j] = v.clone();
                row[2 * j + 1] = -v;
            }
            row[ncols] = &c.rhs * &sign;
            let op = if flip {
                match c.op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                }
            } else {
                c.op
            };
            match op {
                ConstraintOp::Le => {
                    row[slack_idx] = Rat::one();
                    // Slack can serve as the initial basic variable.
                    basis.push(slack_idx);
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_idx] = Rat::from(-1);
                    slack_idx += 1;
                    row[art_start + i] = Rat::one();
                    basis.push(art_start + i);
                }
                ConstraintOp::Eq => {
                    row[art_start + i] = Rat::one();
                    basis.push(art_start + i);
                }
            }
            rows.push(row);
        }

        let mut t = Tableau {
            rows,
            obj: vec![Rat::zero(); ncols],
            basis,
            ncols,
            art_start,
            num_vars: n,
        };

        // Phase 1: maximize -(sum of artificials).
        let needs_phase1 = t.basis.iter().any(|&b| b >= t.art_start);
        if needs_phase1 {
            for j in t.art_start..t.ncols {
                t.obj[j] = Rat::from(-1);
            }
            t.canonicalize_objective();
            t.run_simplex(t.ncols);
            let value = t.objective_value_of(&phase1_cost(t.art_start, t.ncols));
            if value.is_negative() {
                return LpResult::Infeasible;
            }
            t.drive_out_artificials();
        }

        // Phase 2: the real objective (artificial columns excluded from entering).
        t.obj = vec![Rat::zero(); t.ncols];
        for j in 0..n {
            t.obj[2 * j] = objective[j].clone();
            t.obj[2 * j + 1] = -(&objective[j]);
        }
        t.canonicalize_objective();
        if !t.run_simplex(t.art_start) {
            return LpResult::Unbounded;
        }

        let point = t.extract_point();
        let value: Rat = objective
            .iter()
            .zip(point.iter())
            .map(|(c, x)| c * x)
            .sum();
        LpResult::Optimal { value, point }
    }

    /// Zeroes the reduced cost of every basic column by row operations.
    fn canonicalize_objective(&mut self) {
        for (r, &b) in self.basis.clone().iter().enumerate() {
            if self.obj[b].is_zero() {
                continue;
            }
            let factor = self.obj[b].clone();
            for j in 0..self.ncols {
                let v = &self.obj[j] - &(&self.rows[r][j] * &factor);
                self.obj[j] = v;
            }
        }
    }

    /// Runs the simplex loop with Bland's rule, allowing entering columns
    /// only below `col_limit`.  Returns `false` if unbounded.
    fn run_simplex(&mut self, col_limit: usize) -> bool {
        loop {
            // Bland's rule: the lowest-index column with positive reduced cost.
            let entering = (0..col_limit).find(|&j| self.obj[j].is_positive());
            let Some(entering) = entering else { return true };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best: Option<Rat> = None;
            for r in 0..self.rows.len() {
                let a = &self.rows[r][entering];
                if !a.is_positive() {
                    continue;
                }
                let ratio = &self.rows[r][self.ncols] / a;
                let better = match &best {
                    None => true,
                    Some(b) => {
                        ratio < *b
                            || (ratio == *b
                                && self.basis[r] < self.basis[leaving.unwrap()])
                    }
                };
                if better {
                    best = Some(ratio);
                    leaving = Some(r);
                }
            }
            let Some(leaving) = leaving else { return false };
            self.pivot(leaving, entering);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.rows[row][col].clone();
        debug_assert!(!pivot.is_zero());
        let inv = pivot.recip();
        for j in 0..=self.ncols {
            let v = &self.rows[row][j] * &inv;
            self.rows[row][j] = v;
        }
        for r in 0..self.rows.len() {
            if r == row || self.rows[r][col].is_zero() {
                continue;
            }
            let factor = self.rows[r][col].clone();
            for j in 0..=self.ncols {
                let v = &self.rows[r][j] - &(&self.rows[row][j] * &factor);
                self.rows[r][j] = v;
            }
        }
        if !self.obj[col].is_zero() {
            let factor = self.obj[col].clone();
            for j in 0..self.ncols {
                let v = &self.obj[j] - &(&self.rows[row][j] * &factor);
                self.obj[j] = v;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot any artificial variables out of the basis (their
    /// value is zero).  Rows that cannot be pivoted are redundant and dropped.
    fn drive_out_artificials(&mut self) {
        let mut r = 0;
        while r < self.rows.len() {
            if self.basis[r] < self.art_start {
                r += 1;
                continue;
            }
            // Find a non-artificial column with a non-zero entry.
            let col = (0..self.art_start).find(|&j| !self.rows[r][j].is_zero());
            match col {
                Some(col) => {
                    self.pivot(r, col);
                    r += 1;
                }
                None => {
                    // Redundant row: remove it.
                    self.rows.remove(r);
                    self.basis.remove(r);
                }
            }
        }
    }

    fn objective_value_of(&self, cost: &[Rat]) -> Rat {
        let mut value = Rat::zero();
        for (r, &b) in self.basis.iter().enumerate() {
            value += &cost[b] * &self.rows[r][self.ncols];
        }
        value
    }

    fn extract_point(&self) -> Vec<Rat> {
        let mut cols = vec![Rat::zero(); self.ncols];
        for (r, &b) in self.basis.iter().enumerate() {
            cols[b] = self.rows[r][self.ncols].clone();
        }
        (0..self.num_vars)
            .map(|j| &cols[2 * j] - &cols[2 * j + 1])
            .collect()
    }
}

fn phase1_cost(art_start: usize, ncols: usize) -> Vec<Rat> {
    let mut cost = vec![Rat::zero(); ncols];
    for c in cost.iter_mut().take(ncols).skip(art_start) {
        *c = Rat::from(-1);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(n: i64) -> Rat {
        Rat::from(n)
    }

    fn rq(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn simple_maximization() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y free but
        // implicitly bounded by x <= 4, y <= 2 through constraints plus
        // x >= 0, y >= 0 added explicitly.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(vec![ri(1), ri(1)], ConstraintOp::Le, ri(4));
        lp.add_constraint(vec![ri(1), ri(3)], ConstraintOp::Le, ri(6));
        lp.add_constraint(vec![ri(1), ri(0)], ConstraintOp::Ge, ri(0));
        lp.add_constraint(vec![ri(0), ri(1)], ConstraintOp::Ge, ri(0));
        match lp.maximize(&[ri(3), ri(2)]) {
            LpResult::Optimal { value, point } => {
                assert_eq!(value, ri(12));
                assert_eq!(point, vec![ri(4), ri(0)]);
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn infeasible_system() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![ri(1)], ConstraintOp::Ge, ri(5));
        lp.add_constraint(vec![ri(1)], ConstraintOp::Le, ri(3));
        assert_eq!(lp.maximize(&[ri(1)]), LpResult::Infeasible);
        assert!(!lp.is_feasible());
    }

    #[test]
    fn unbounded_objective() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![ri(1)], ConstraintOp::Ge, ri(0));
        assert_eq!(lp.maximize(&[ri(1)]), LpResult::Unbounded);
        // But minimization is bounded.
        match lp.minimize(&[ri(1)]) {
            LpResult::Optimal { value, .. } => assert_eq!(value, ri(0)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn equality_constraints() {
        // x + y = 10, x - y = 4 => x = 7, y = 3.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(vec![ri(1), ri(1)], ConstraintOp::Eq, ri(10));
        lp.add_constraint(vec![ri(1), ri(-1)], ConstraintOp::Eq, ri(4));
        let p = lp.find_point().unwrap();
        assert_eq!(p, vec![ri(7), ri(3)]);
    }

    #[test]
    fn negative_rhs_and_free_vars() {
        // x <= -5 is satisfiable for a free variable.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![ri(1)], ConstraintOp::Le, ri(-5));
        let p = lp.find_point().unwrap();
        assert!(p[0] <= ri(-5));
        match lp.maximize(&[ri(1)]) {
            LpResult::Optimal { value, .. } => assert_eq!(value, ri(-5)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn fractional_optimum() {
        // maximize y s.t. 2y <= 1, y >= 0 => 1/2.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![ri(2)], ConstraintOp::Le, ri(1));
        lp.add_constraint(vec![ri(1)], ConstraintOp::Ge, ri(0));
        match lp.maximize(&[ri(1)]) {
            LpResult::Optimal { value, .. } => assert_eq!(value, rq(1, 2)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn redundant_equalities() {
        // Same constraint twice (exercises drive_out_artificials removing rows).
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(vec![ri(1), ri(1)], ConstraintOp::Eq, ri(2));
        lp.add_constraint(vec![ri(2), ri(2)], ConstraintOp::Eq, ri(4));
        assert!(lp.is_feasible());
        match lp.maximize(&[ri(1), ri(0)]) {
            // x is unbounded above along the line x + y = 2? No: x can grow
            // while y shrinks, so it is unbounded.
            LpResult::Unbounded => {}
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn constraint_satisfaction_check() {
        let c = LinearConstraint::new(vec![ri(1), ri(-1)], ConstraintOp::Ge, ri(0));
        assert!(c.satisfied_by(&[ri(3), ri(2)]));
        assert!(!c.satisfied_by(&[ri(1), ri(2)]));
        let point = vec![ri(2), ri(2)];
        assert!(c.satisfied_by(&point));
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        let mut lp = LinearProgram::new(3);
        lp.add_constraint(vec![ri(1), ri(2), ri(-1)], ConstraintOp::Le, ri(7));
        lp.add_constraint(vec![ri(-3), ri(1), ri(2)], ConstraintOp::Ge, ri(-4));
        lp.add_constraint(vec![ri(1), ri(1), ri(1)], ConstraintOp::Eq, ri(5));
        let p = lp.find_point().unwrap();
        for c in lp.constraints() {
            assert!(c.satisfied_by(&p), "violated: {}", c);
        }
    }
}
