//! Loop and cycle discovery on control flow graphs, shared by the baselines.

use compact_graph::{DiGraph, DominatorTree, EdgeId, NodeId};

/// The loop headers of a rooted CFG: targets of back edges (edges whose
/// target dominates their source).
pub fn loop_headers(graph: &DiGraph, root: NodeId) -> Vec<NodeId> {
    let dom = DominatorTree::compute(graph, root);
    let mut headers = Vec::new();
    for (_, e) in graph.edges() {
        if dom.is_reachable(e.src) && dom.dominates(e.dst, e.src) && !headers.contains(&e.dst) {
            headers.push(e.dst);
        }
    }
    headers
}

/// Enumerates the simple cycles (as edge sequences) that pass through
/// `header` and visit no vertex twice, up to `limit` cycles.  Returns `None`
/// if the limit is exceeded.
pub fn simple_cycles_through(
    graph: &DiGraph,
    header: NodeId,
    limit: usize,
) -> Option<Vec<Vec<EdgeId>>> {
    let mut cycles = Vec::new();
    let mut path: Vec<EdgeId> = Vec::new();
    let mut visited = vec![false; graph.num_nodes()];
    if !dfs(graph, header, header, &mut visited, &mut path, &mut cycles, limit) {
        return None;
    }
    Some(cycles)
}

fn dfs(
    graph: &DiGraph,
    current: NodeId,
    header: NodeId,
    visited: &mut Vec<bool>,
    path: &mut Vec<EdgeId>,
    cycles: &mut Vec<Vec<EdgeId>>,
    limit: usize,
) -> bool {
    for (edge, next) in graph.successors(current) {
        if next == header {
            if cycles.len() >= limit {
                return false;
            }
            let mut cycle = path.clone();
            cycle.push(edge);
            cycles.push(cycle);
            continue;
        }
        if visited[next] {
            continue;
        }
        visited[next] = true;
        path.push(edge);
        let ok = dfs(graph, next, header, visited, path, cycles, limit);
        path.pop();
        visited[next] = false;
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_of_a_simple_loop() {
        // 0 -> 1 -> 2 -> 1, 1 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(1, 3);
        assert_eq!(loop_headers(&g, 0), vec![1]);
    }

    #[test]
    fn headers_of_nested_loops() {
        // outer header 1, inner header 2.
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2); // inner back edge
        g.add_edge(2, 1); // outer back edge
        g.add_edge(1, 4);
        let mut headers = loop_headers(&g, 0);
        headers.sort();
        assert_eq!(headers, vec![1, 2]);
    }

    #[test]
    fn simple_cycles_of_a_diamond_loop() {
        // Header 1 with two ways around: 1->2->1 and 1->3->1.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(1, 3);
        g.add_edge(3, 1);
        let cycles = simple_cycles_through(&g, 1, 10).unwrap();
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn cycle_limit_is_respected() {
        // A dense graph with many cycles through node 0... build a small
        // complete-ish graph.
        let mut g = DiGraph::with_nodes(5);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    g.add_edge(a, b);
                }
            }
        }
        assert!(simple_cycles_through(&g, 0, 3).is_none());
        assert!(simple_cycles_through(&g, 0, 1000).is_some());
    }
}
