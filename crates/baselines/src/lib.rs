//! Baseline termination analyzers used in the evaluation (§7).
//!
//! The paper compares ComPACT against four external tools (Ultimate
//! Automizer, 2LS, CPAchecker, Termite).  Those tools cannot be rebuilt
//! here; instead this crate implements the two analysis *techniques* the
//! paper positions itself against, so the evaluation harness can reproduce
//! the qualitative shape of Table 1 and Figure 5:
//!
//! * [`TermiteStyle`] — monolithic complete ranking-function synthesis: each
//!   loop is analyzed in isolation by synthesizing a linear (lexicographic)
//!   ranking function for its one-iteration relation.  Like Termite it does
//!   not summarize nested loops and does not handle recursion, so it gives
//!   up on such programs.
//! * [`TerminatorStyle`] — disjunctive well-foundedness in the style of
//!   Terminator/Ultimate: every simple cycle of a loop gets its own ranking
//!   relation, and the set of cycle relations must be closed under
//!   composition (a sound transition-invariant check à la
//!   Podelski–Rybalchenko).  Unlike the real tools there is no refinement
//!   loop: when the closure check fails the baseline reports "unknown", and
//!   the closure check itself is quadratic in the number of cycles — which is
//!   the cost profile Figure 5 contrasts against.
//!
//! Both baselines are *sound*: they report "terminating" only when the
//! program indeed terminates from every state.

#![warn(missing_docs)]

mod cycles;
mod terminator;
mod termite;

pub use cycles::{loop_headers, simple_cycles_through};
pub use terminator::TerminatorStyle;
pub use termite::TermiteStyle;

use std::time::Duration;

/// The verdict of a baseline analyzer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineVerdict {
    /// Termination proved for every initial state.
    Terminating,
    /// The analyzer could not prove termination.
    Unknown,
}

/// The result of running a baseline analyzer on a program.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// The verdict.
    pub verdict: BaselineVerdict,
    /// Wall-clock analysis time.
    pub analysis_time: Duration,
    /// The name of the baseline.
    pub tool: String,
}

impl BaselineReport {
    /// Returns `true` if the baseline proved termination.
    pub fn proved_termination(&self) -> bool {
        self.verdict == BaselineVerdict::Terminating
    }
}
