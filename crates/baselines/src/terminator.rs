//! The Terminator-style baseline: disjunctive well-foundedness with an
//! explicit transition-invariant closure check.

use crate::cycles::{loop_headers, simple_cycles_through};
use crate::termite::{cycle_relation, cycle_union};
use crate::{BaselineReport, BaselineVerdict};
use compact_analysis::{synthesize_llrf, LexicographicRankingFunction, RankingResult};
use compact_lang::Program;
use compact_logic::{Formula, Symbol, Term};
use compact_smt::Solver;
use compact_tf::TransitionFormula;
use std::collections::BTreeMap;
use std::time::Instant;

/// A baseline in the style of Terminator / Ultimate Automizer: each simple
/// cycle of a loop gets its own (lexicographic) ranking relation, and the
/// set of cycle relations must be closed under relational composition —
/// the sound disjunctive well-foundedness condition of Podelski–Rybalchenko.
///
/// The real tools discover the disjuncts by counterexample-guided
/// refinement; this baseline enumerates the simple cycles up front and does
/// not refine, so it fails (soundly, with "unknown") whenever the closure
/// check does not hold for the syntactic cycles — in particular on most
/// nested loops.  Its cost grows quadratically in the number of cycles,
/// which reproduces the running-time contrast of Figure 5.
pub struct TerminatorStyle {
    /// Maximum number of simple cycles per loop header.
    pub cycle_limit: usize,
}

impl TerminatorStyle {
    /// Creates the baseline with its default settings.
    pub fn new() -> TerminatorStyle {
        TerminatorStyle { cycle_limit: 32 }
    }

    /// Analyzes a program.
    pub fn analyze(&self, program: &Program) -> BaselineReport {
        let start = Instant::now();
        let verdict = self.analyze_verdict(program);
        BaselineReport {
            verdict,
            analysis_time: start.elapsed(),
            tool: "terminator-style".to_string(),
        }
    }

    fn analyze_verdict(&self, program: &Program) -> BaselineVerdict {
        if program.has_calls() {
            return BaselineVerdict::Unknown;
        }
        let solver = Solver::new();
        let main = program.entry_procedure();
        for header in loop_headers(&main.graph, main.entry) {
            let Some(cycles) = simple_cycles_through(&main.graph, header, self.cycle_limit)
            else {
                return BaselineVerdict::Unknown;
            };
            // Relations of the individual cycles.
            let mut relations: Vec<TransitionFormula> = Vec::new();
            for cycle in &cycles {
                let Some(relation) = cycle_relation(program, main, cycle) else {
                    return BaselineVerdict::Unknown;
                };
                if !relation.is_empty(&solver) {
                    relations.push(relation);
                }
            }
            if relations.is_empty() {
                continue;
            }
            // Each disjunct must be well-founded; record the corresponding
            // abstract ranking relation (well-founded by construction).
            let vars = program.vars.clone();
            let mut abstractions: Vec<TransitionFormula> = Vec::new();
            for relation in &relations {
                match synthesize_llrf(&solver, relation, 8) {
                    RankingResult::Found(llrf) => {
                        abstractions.push(ranking_relation(&llrf, &vars));
                    }
                    _ => return BaselineVerdict::Unknown,
                }
            }
            // The union of the abstract relations must be an inductive
            // transition invariant for the one-iteration relation R:
            //   R ⊆ ⋃ᵢ Aᵢ   and   Aᵢ ∘ R ⊆ ⋃ⱼ Aⱼ.
            // Together with well-foundedness of each Aᵢ this implies that no
            // infinite sequence of loop iterations exists
            // (Podelski–Rybalchenko).
            let Some(one_iteration) = cycle_union(&solver, program, main, &cycles) else {
                return BaselineVerdict::Unknown;
            };
            let union_abstract = abstractions
                .iter()
                .skip(1)
                .fold(abstractions[0].clone(), |acc, a| acc.or(a));
            let union_formula = union_abstract.closed_formula();
            if !solver.entails(&one_iteration.closed_formula(), &union_formula) {
                return BaselineVerdict::Unknown;
            }
            for a in &abstractions {
                let composed = a.compose(&one_iteration).closed_formula();
                if !solver.entails(&composed, &union_formula) {
                    return BaselineVerdict::Unknown;
                }
            }
        }
        BaselineVerdict::Terminating
    }
}

impl Default for TerminatorStyle {
    fn default() -> Self {
        TerminatorStyle::new()
    }
}

/// The well-founded "ranking relation" induced by a lexicographic ranking
/// function: some component is non-negative and strictly decreases while all
/// earlier components are non-increasing.
fn ranking_relation(
    llrf: &LexicographicRankingFunction,
    vars: &[Symbol],
) -> TransitionFormula {
    let prime: BTreeMap<Symbol, Term> = vars
        .iter()
        .map(|v| (*v, Term::var(v.primed())))
        .collect();
    let mut cases = Vec::new();
    let mut prefix = Vec::new();
    for component in &llrf.components {
        let term = component.to_term();
        let primed = term.substitute(&prime);
        let decreases = Formula::and(vec![
            Formula::ge(term.clone(), Term::constant(0)),
            Formula::le(primed.clone(), term.clone() - 1),
        ]);
        cases.push(Formula::and(
            prefix.iter().cloned().chain(std::iter::once(decreases)).collect(),
        ));
        prefix.push(Formula::le(primed, term));
    }
    TransitionFormula::new(Formula::or(cases), vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_lang::compile;

    fn run(source: &str) -> BaselineReport {
        TerminatorStyle::new().analyze(&compile(source).unwrap())
    }

    #[test]
    fn proves_simple_counting_loop() {
        let report = run("proc main() { while (x > 0) { x := x - 1; } }");
        assert!(report.proved_termination());
    }

    #[test]
    fn does_not_prove_divergence() {
        let report = run("proc main() { while (x > 0) { x := x + 1; } }");
        assert!(!report.proved_termination());
    }

    #[test]
    fn proves_two_phase_decreasing_loop() {
        // Two cycles, both decreasing x; union is closed under composition.
        let report = run(
            "proc main() { while (x > 0) { if (*) { x := x - 1; } else { x := x - 2; } } }",
        );
        assert!(report.proved_termination());
    }

    #[test]
    fn gives_up_without_refinement_on_nested_loops() {
        let report = run(
            "proc main() { i := 0; while (i < 8) { j := 0; while (j < 8) { j := j + 1; } i := i + 1; } }",
        );
        assert!(!report.proved_termination());
    }

    #[test]
    fn gives_up_on_recursion() {
        let report = run("proc main() { g := n; call f(); } proc f() { if (g > 0) { g := g - 1; call f(); } }");
        assert!(!report.proved_termination());
    }
}
