//! The Termite-style baseline: monolithic complete ranking-function
//! synthesis per loop, without compositional summarization.

use crate::cycles::{loop_headers, simple_cycles_through};
use crate::{BaselineReport, BaselineVerdict};
use compact_analysis::synthesize_llrf;
use compact_graph::EdgeId;
use compact_lang::{EdgeLabel, Procedure, Program};
use compact_smt::Solver;
use compact_tf::TransitionFormula;
use std::time::Instant;

/// A baseline in the style of Termite (Gonnord et al.): for every loop
/// header, the one-iteration relation is built as the union of the simple
/// cycle paths through the header, and a linear (lexicographic) ranking
/// function is synthesized for it.
///
/// Limitations that mirror the real tool's behaviour in Table 1:
///
/// * loops containing *nested* loop headers are rejected (the one-iteration
///   relation of the outer loop cannot be expressed without summarization);
/// * recursion is not supported;
/// * no conditional termination: the verdict is all-or-nothing.
pub struct TermiteStyle {
    /// Maximum number of simple cycles per header before giving up.
    pub cycle_limit: usize,
    /// Use lexicographic (rather than plain linear) ranking functions.
    pub lexicographic: bool,
}

impl TermiteStyle {
    /// Creates the baseline with its default settings.
    pub fn new() -> TermiteStyle {
        TermiteStyle { cycle_limit: 64, lexicographic: true }
    }

    /// Analyzes a program.
    pub fn analyze(&self, program: &Program) -> BaselineReport {
        let start = Instant::now();
        let verdict = self.analyze_verdict(program);
        BaselineReport {
            verdict,
            analysis_time: start.elapsed(),
            tool: "termite-style".to_string(),
        }
    }

    fn analyze_verdict(&self, program: &Program) -> BaselineVerdict {
        if program.has_calls() {
            return BaselineVerdict::Unknown;
        }
        let solver = Solver::new();
        let main = program.entry_procedure();
        let headers = loop_headers(&main.graph, main.entry);
        for &header in &headers {
            // Reject nested loops: a simple cycle through this header that
            // contains another header means the loop nest is not flat.
            let Some(cycles) = simple_cycles_through(&main.graph, header, self.cycle_limit)
            else {
                return BaselineVerdict::Unknown;
            };
            let mut nested = false;
            for cycle in &cycles {
                for &edge in cycle {
                    let dst = main.graph.edge(edge).dst;
                    if dst != header && headers.contains(&dst) {
                        nested = true;
                    }
                }
            }
            if nested {
                return BaselineVerdict::Unknown;
            }
            // One-iteration relation: union of the cycle path relations.
            let Some(relation) = cycle_union(&solver, program, main, &cycles) else {
                return BaselineVerdict::Unknown;
            };
            let max_components = if self.lexicographic { 8 } else { 1 };
            if !synthesize_llrf(&solver, &relation, max_components).is_found() {
                return BaselineVerdict::Unknown;
            }
        }
        BaselineVerdict::Terminating
    }
}

impl Default for TermiteStyle {
    fn default() -> Self {
        TermiteStyle::new()
    }
}

/// Builds the union of the relations of the given cycle paths.
pub(crate) fn cycle_union(
    solver: &Solver,
    program: &Program,
    procedure: &Procedure,
    cycles: &[Vec<EdgeId>],
) -> Option<TransitionFormula> {
    let mut union: Option<TransitionFormula> = None;
    for cycle in cycles {
        let relation = cycle_relation(program, procedure, cycle)?;
        if relation.is_empty(solver) {
            continue;
        }
        union = Some(match union {
            None => relation,
            Some(acc) => acc.or(&relation),
        });
    }
    Some(union.unwrap_or_else(|| TransitionFormula::bottom(&program.vars)))
}

/// The composed relation of one cycle path (fails on call edges).
pub(crate) fn cycle_relation(
    program: &Program,
    procedure: &Procedure,
    cycle: &[EdgeId],
) -> Option<TransitionFormula> {
    let mut relation = TransitionFormula::identity(&program.vars);
    for &edge in cycle {
        match procedure.label(edge) {
            EdgeLabel::Transition(t) => {
                relation = relation.compose(&t.extend_footprint(&program.vars));
            }
            EdgeLabel::Call(_) => return None,
        }
    }
    Some(relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_lang::compile;

    fn run(source: &str) -> BaselineReport {
        TermiteStyle::new().analyze(&compile(source).unwrap())
    }

    #[test]
    fn proves_simple_counting_loop() {
        let report = run("proc main() { while (x > 0) { x := x - 1; } }");
        assert!(report.proved_termination());
    }

    #[test]
    fn proves_multipath_loop() {
        let report = run(
            "proc main() { while (x > 0 && y > 0) { if (*) { x := x - 1; } else { y := y - 1; } } }",
        );
        assert!(report.proved_termination());
    }

    #[test]
    fn gives_up_on_nested_loops() {
        let report = run(
            "proc main() { i := 0; while (i < 10) { j := 0; while (j < 10) { j := j + 1; } i := i + 1; } }",
        );
        assert!(!report.proved_termination());
    }

    #[test]
    fn gives_up_on_recursion() {
        let report = run("proc main() { call main(); }");
        assert!(!report.proved_termination());
    }

    #[test]
    fn does_not_prove_divergent_loops() {
        let report = run("proc main() { while (x > 0) { x := x + 1; } }");
        assert!(!report.proved_termination());
    }
}
