//! End-to-end benchmarks: whole-task analysis time for one representative
//! task per suite (the per-task measurements behind Table 1 / Figure 5), the
//! §7 nested-loop anecdote, and the ablation configurations of Table 2 on a
//! fixed task.

use compact_analysis::{Analyzer, AnalyzerConfig};
use compact_lang::compile;
use compact_suites::{nested_counting_loops, suite_tasks, Suite};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_representative_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_task");
    group.sample_size(10);
    for suite in [Suite::Termination, Suite::Polybench] {
        let task = suite_tasks(suite).into_iter().next().expect("non-empty suite");
        let program = task.program();
        group.bench_function(format!("{}::{}", suite.name(), task.name), |b| {
            b.iter(|| {
                let analyzer = Analyzer::with_default_config();
                analyzer.analyze_program(&program)
            });
        });
    }
    group.finish();
}

fn bench_nested_anecdote(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_anecdote");
    group.sample_size(10);
    let program = compile(&nested_counting_loops(2, 4096)).unwrap();
    group.bench_function("nested_4096", |b| {
        b.iter(|| {
            let analyzer = Analyzer::with_default_config();
            analyzer.analyze_program(&program)
        });
    });
    group.finish();
}

fn bench_ablation_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let program = compile("proc main() { while (x > 0) { x := x + y; y := y - 1; } }").unwrap();
    for (name, config) in [
        ("llrf_only", AnalyzerConfig::llrf_only()),
        ("default", AnalyzerConfig::compact_default()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let analyzer = Analyzer::new(config.clone());
                analyzer.analyze_program(&program)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_representative_tasks, bench_nested_anecdote, bench_ablation_configs);
criterion_main!(benches);
