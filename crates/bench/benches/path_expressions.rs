//! Benchmarks the ω-path-expression algorithm (Algorithm 2) on control flow
//! graphs of increasing size, supporting the complexity claim of §4.

use compact_graph::{omega_path_expression, DiGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a chain of `n` consecutive simple loops.
fn loop_chain(n: usize) -> DiGraph {
    let mut g = DiGraph::new();
    let entry = g.add_node();
    let mut cur = entry;
    for _ in 0..n {
        let head = g.add_node();
        let body = g.add_node();
        let after = g.add_node();
        g.add_edge(cur, head);
        g.add_edge(head, body);
        g.add_edge(body, head);
        g.add_edge(head, after);
        cur = after;
    }
    g
}

/// Builds a nest of `n` loops.
fn loop_nest(n: usize) -> DiGraph {
    let mut g = DiGraph::new();
    let entry = g.add_node();
    let mut heads = Vec::new();
    let mut cur = entry;
    for _ in 0..n {
        let head = g.add_node();
        g.add_edge(cur, head);
        heads.push(head);
        cur = head;
    }
    // innermost body and back edges
    let body = g.add_node();
    g.add_edge(cur, body);
    let mut back_src = body;
    for &head in heads.iter().rev() {
        g.add_edge(back_src, head);
        back_src = head;
    }
    g
}

fn bench_path_expressions(c: &mut Criterion) {
    let mut group = c.benchmark_group("omega_path_expression");
    group.sample_size(20);
    for n in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("loop_chain", n), &n, |b, &n| {
            let g = loop_chain(n);
            b.iter(|| omega_path_expression(&g, 0));
        });
        group.bench_with_input(BenchmarkId::new("loop_nest", n.min(64)), &n, |b, &n| {
            let g = loop_nest(n.min(64));
            b.iter(|| omega_path_expression(&g, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_expressions);
criterion_main!(benches);
