//! Benchmarks the `(-)★` operator (§3.3) and the `mpexp` / `mpLLRF`
//! operators (§6) on representative loop bodies.

use compact_analysis::{MpExp, MpLlrf};
use compact_logic::{parse_formula, Symbol};
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, TransitionFormula};
use criterion::{criterion_group, criterion_main, Criterion};

fn tf(formula: &str, vars: &[&str]) -> TransitionFormula {
    let vs: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
    TransitionFormula::new(parse_formula(formula).unwrap(), &vs)
}

fn bench_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_formula");
    group.sample_size(10);
    let inner = tf(
        "m < step && n >= 0 && m' = m + 1 && n' = n - 1 && step' = step",
        &["m", "n", "step"],
    );
    group.bench_function("star_figure1_inner", |b| {
        b.iter(|| {
            let solver = Solver::new();
            inner.star(&solver)
        });
    });
    let countdown = tf("x > 0 && x' = x - 1", &["x"]);
    group.bench_function("mp_llrf_countdown", |b| {
        b.iter(|| {
            let solver = Solver::new();
            MpLlrf::new().mortal_precondition(&solver, &countdown)
        });
    });
    let even = tf("x != 0 && x' = x - 2", &["x"]);
    group.bench_function("mp_exp_even_countdown", |b| {
        b.iter(|| {
            let solver = Solver::new();
            MpExp::new().mortal_precondition(&solver, &even)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_star);
criterion_main!(benches);
