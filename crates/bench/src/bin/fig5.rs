//! Regenerates the data of Figure 5 of the paper: a per-task scatter of
//! ComPACT analysis time against the strongest baseline (the
//! Terminator/Ultimate-style analyzer).
//!
//! Usage: `cargo run -p compact-bench --bin fig5 [-- --timeout <secs>] [-- --nested-anecdote]`

use compact_analysis::{Analyzer, AnalyzerConfig};
use compact_bench::{run_suite, timeout_from_args, Tool};
use compact_lang::compile;
use compact_suites::Suite;

fn main() {
    let timeout = timeout_from_args(30);
    if std::env::args().any(|a| a == "--nested-anecdote") {
        nested_anecdote();
        return;
    }
    println!("Figure 5: per-task times on the `termination` suite (seconds)");
    println!("columns: task, compact_time, baseline_time, compact_proved, baseline_proved\n");
    let (_, compact) = run_suite(
        &Tool::Compact(AnalyzerConfig::compact_default()),
        Suite::Termination,
        timeout,
    );
    let (_, baseline) = run_suite(&Tool::Terminator, Suite::Termination, timeout);
    println!("{:<28} {:>12} {:>14} {:>15} {:>16}", "task", "compact(s)", "baseline(s)", "compact_proved", "baseline_proved");
    for (c, b) in compact.iter().zip(baseline.iter()) {
        println!(
            "{:<28} {:>12.3} {:>14.3} {:>15} {:>16}",
            c.task,
            c.time.as_secs_f64(),
            b.time.as_secs_f64(),
            c.proved,
            b.proved
        );
    }
}

/// The §7 anecdote: the constant-bound nested loop that ComPACT proves in a
/// fraction of a second while refinement-based tools time out.
fn nested_anecdote() {
    let source = r#"
        proc main() {
            i := 0;
            while (i < 4096) {
                j := 0;
                while (j < 4096) { i := i; j := j + 1; }
                i := i + 1;
            }
        }
    "#;
    let program = compile(source).expect("anecdote program compiles");
    let analyzer = Analyzer::with_default_config();
    let report = analyzer.analyze_program(&program);
    println!(
        "nested 4096x4096 loop: proved={} in {:.3}s",
        report.proved_termination(),
        report.analysis_time.as_secs_f64()
    );
}
