//! Regenerates Table 1 of the paper: per-suite `#correct` and total time for
//! ComPACT and the baseline tools.
//!
//! Usage: `cargo run -p compact-bench --bin table1 [-- --timeout <secs>]`

use compact_bench::{run_suite, seconds, timeout_from_args, Tool};
use compact_suites::Suite;

fn main() {
    let timeout = timeout_from_args(30);
    let tools = vec![
        Tool::Compact(compact_analysis::AnalyzerConfig::compact_default()),
        Tool::Terminator,
        Tool::Termite,
    ];
    println!("Table 1: termination verification benchmarks (time in seconds)");
    println!("timeout per task: {}s\n", timeout.as_secs());
    print!("{:<16} {:>7}", "benchmark", "#tasks");
    for tool in &tools {
        print!(" | {:>28}", tool.name());
    }
    println!();
    print!("{:<16} {:>7}", "", "");
    for _ in &tools {
        print!(" | {:>14} {:>13}", "#correct", "time");
    }
    println!();
    let mut totals = vec![(0usize, std::time::Duration::ZERO); tools.len()];
    let mut total_tasks = 0usize;
    for suite in Suite::all() {
        let mut row = format!("{:<16}", suite.name());
        let mut task_count = 0;
        for (i, tool) in tools.iter().enumerate() {
            let (summary, _) = run_suite(tool, suite, timeout);
            task_count = summary.tasks;
            totals[i].0 += summary.correct;
            totals[i].1 += summary.total_time;
            row.push_str(&format!(
                " | {:>14} {:>13}",
                summary.correct,
                seconds(summary.total_time)
            ));
        }
        total_tasks += task_count;
        println!("{:<16} {:>7}{}", suite.name(), task_count, &row[16..]);
    }
    print!("{:<16} {:>7}", "Total", total_tasks);
    for (correct, time) in &totals {
        print!(" | {:>14} {:>13}", correct, seconds(*time));
    }
    println!();
}
