//! Regenerates Table 2 of the paper: the contribution of each component of
//! ComPACT (LLRF / exp base operators, with and without phase analysis).
//!
//! Usage: `cargo run -p compact-bench --bin table2 [-- --timeout <secs>] [-- --linear-only]`

use compact_bench::{run_suite, seconds, table2_configurations, timeout_from_args, Tool};
use compact_suites::Suite;

fn main() {
    let timeout = timeout_from_args(30);
    let linear_only = std::env::args().any(|a| a == "--linear-only");
    let mut configurations = table2_configurations();
    if linear_only {
        // Footnote 3: restrict the ranking operator to plain linear ranking
        // functions.
        configurations = vec![
            (
                "LRF only".to_string(),
                compact_analysis::AnalyzerConfig {
                    ranking: compact_analysis::RankingChoice::LinearOnly,
                    use_exp: false,
                    use_phase: false,
                },
            ),
            (
                "LRF + phase".to_string(),
                compact_analysis::AnalyzerConfig {
                    ranking: compact_analysis::RankingChoice::LinearOnly,
                    use_exp: false,
                    use_phase: true,
                },
            ),
        ];
    }
    println!("Table 2: contribution of ComPACT components (time in seconds)");
    println!("timeout per task: {}s\n", timeout.as_secs());
    print!("{:<16}", "benchmark");
    for (name, _) in &configurations {
        print!(" | {:>22}", name);
    }
    println!();
    let mut totals = vec![(0usize, std::time::Duration::ZERO); configurations.len()];
    for suite in Suite::all() {
        print!("{:<16}", suite.name());
        for (i, (_, config)) in configurations.iter().enumerate() {
            let (summary, _) = run_suite(&Tool::Compact(config.clone()), suite, timeout);
            totals[i].0 += summary.correct;
            totals[i].1 += summary.total_time;
            print!(" | {:>12} {:>9}", summary.correct, seconds(summary.total_time));
        }
        println!();
    }
    print!("{:<16}", "Total");
    for (correct, time) in &totals {
        print!(" | {:>12} {:>9}", correct, seconds(*time));
    }
    println!();
}
