//! Shared harness for regenerating the tables and figures of the paper's
//! evaluation (§7).
//!
//! The binaries `table1`, `table2` and `fig5` print the corresponding
//! table/figure; the Criterion benchmarks in `benches/` measure the
//! scalability of the individual components (path expressions, the `(-)★`
//! operator, phase analysis, whole-task analysis).

#![warn(missing_docs)]

use compact_analysis::{Analyzer, AnalyzerConfig};
use compact_baselines::{TerminatorStyle, TermiteStyle};
use compact_suites::{suite_tasks, Suite, Task};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// The outcome of one tool on one task.
#[derive(Clone, Debug)]
pub struct TaskOutcome {
    /// The task name.
    pub task: String,
    /// Whether termination was proved.
    pub proved: bool,
    /// Wall-clock time (the timeout value if the tool timed out).
    pub time: Duration,
    /// Whether the tool hit the timeout.
    pub timed_out: bool,
}

/// Aggregate results of a tool over one suite (one cell group of Table 1).
#[derive(Clone, Debug, Default)]
pub struct SuiteSummary {
    /// Number of tasks in the suite.
    pub tasks: usize,
    /// Number of tasks proved terminating.
    pub correct: usize,
    /// Total time over all tasks.
    pub total_time: Duration,
}

/// The tools compared in Table 1.
#[derive(Clone, Debug)]
pub enum Tool {
    /// ComPACT with a given configuration.
    Compact(AnalyzerConfig),
    /// The Termite-style baseline.
    Termite,
    /// The Terminator-style baseline.
    Terminator,
}

impl Tool {
    /// The display name of the tool.
    pub fn name(&self) -> String {
        match self {
            Tool::Compact(config) => format!("ComPACT[{}]", config.describe()),
            Tool::Termite => "Termite-style".to_string(),
            Tool::Terminator => "Terminator-style".to_string(),
        }
    }
}

/// Runs a tool on a task with a timeout.  Tasks that exceed the timeout are
/// counted as not proved (matching the paper's treatment).
pub fn run_task(tool: &Tool, task: &Task, timeout: Duration) -> TaskOutcome {
    let tool = tool.clone();
    let task = task.clone();
    let name = task.name.clone();
    let (sender, receiver) = mpsc::channel();
    let start = std::time::Instant::now();
    thread::spawn(move || {
        let program = task.program();
        let (proved, time) = match tool {
            Tool::Compact(config) => {
                let analyzer = Analyzer::new(config);
                let report = analyzer.analyze_program(&program);
                (report.proved_termination(), report.analysis_time)
            }
            Tool::Termite => {
                let report = TermiteStyle::new().analyze(&program);
                (report.proved_termination(), report.analysis_time)
            }
            Tool::Terminator => {
                let report = TerminatorStyle::new().analyze(&program);
                (report.proved_termination(), report.analysis_time)
            }
        };
        let _ = sender.send((proved, time));
    });
    match receiver.recv_timeout(timeout) {
        Ok((proved, time)) => TaskOutcome { task: name, proved, time, timed_out: false },
        Err(_) => TaskOutcome {
            task: name,
            proved: false,
            time: start.elapsed().min(timeout),
            timed_out: true,
        },
    }
}

/// Runs a tool over a whole suite.
pub fn run_suite(tool: &Tool, suite: Suite, timeout: Duration) -> (SuiteSummary, Vec<TaskOutcome>) {
    let tasks = suite_tasks(suite);
    let mut summary = SuiteSummary { tasks: tasks.len(), ..SuiteSummary::default() };
    let mut outcomes = Vec::new();
    for task in &tasks {
        let outcome = run_task(tool, task, timeout);
        if outcome.proved {
            summary.correct += 1;
        }
        summary.total_time += outcome.time;
        outcomes.push(outcome);
    }
    (summary, outcomes)
}

/// The ablation configurations of Table 2, in row order.
pub fn table2_configurations() -> Vec<(String, AnalyzerConfig)> {
    vec![
        ("ComPACT (default)".to_string(), AnalyzerConfig::compact_default()),
        ("LLRF only".to_string(), AnalyzerConfig::llrf_only()),
        ("LLRF + phase".to_string(), AnalyzerConfig::llrf_phase()),
        ("exp only".to_string(), AnalyzerConfig::exp_only()),
        ("exp + phase".to_string(), AnalyzerConfig::exp_phase()),
    ]
}

/// Formats a duration in seconds with one decimal, as in the paper's tables.
pub fn seconds(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Parses a `--timeout <seconds>` style command-line option, with a default.
pub fn timeout_from_args(default_secs: u64) -> Duration {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--timeout" {
            if let Ok(secs) = window[1].parse::<u64>() {
                return Duration::from_secs(secs);
            }
        }
    }
    Duration::from_secs(default_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_task_respects_timeouts() {
        let tasks = suite_tasks(Suite::Termination);
        let task = &tasks[0];
        // A generous timeout: the simplest task must succeed.
        let outcome = run_task(
            &Tool::Compact(AnalyzerConfig::compact_default()),
            task,
            Duration::from_secs(60),
        );
        assert!(!outcome.timed_out);
        assert!(outcome.proved, "count_down should be proved");
        // A zero timeout forces the timeout path.
        let outcome = run_task(&Tool::Termite, task, Duration::from_millis(0));
        assert!(outcome.timed_out);
        assert!(!outcome.proved);
    }

    #[test]
    fn table2_has_five_rows() {
        assert_eq!(table2_configurations().len(), 5);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(seconds(Duration::from_millis(1500)), "1.5");
    }
}
