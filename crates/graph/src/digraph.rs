//! A small directed multigraph with indexed nodes and edges.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a node in a [`DiGraph`].
pub type NodeId = usize;

/// Identifier of an edge in a [`DiGraph`].
pub type EdgeId = usize;

/// A directed edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A directed multigraph.
///
/// Nodes and edges are identified by dense indices, which makes the graph
/// cheap to traverse and easy to use as the control-flow-graph substrate of
/// the path-expression algorithms.
///
/// # Examples
///
/// ```
/// use compact_graph::DiGraph;
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b);
/// assert_eq!(g.edge(e).dst, b);
/// assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![(e, b)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> DiGraph {
        DiGraph::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> DiGraph {
        DiGraph {
            num_nodes: n,
            edges: Vec::new(),
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.num_nodes;
        self.num_nodes += 1;
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds an edge and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of the graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src < self.num_nodes && dst < self.num_nodes, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push(Edge { src, dst });
        self.succ[src].push(id);
        self.pred[dst].push(id);
        id
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given identifier.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// Iterates over all edges as `(id, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges.iter().copied().enumerate()
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes
    }

    /// The outgoing edges of a node, as `(edge id, destination)` pairs.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.succ[node].iter().map(move |&e| (e, self.edges[e].dst))
    }

    /// The incoming edges of a node, as `(edge id, source)` pairs.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.pred[node].iter().map(move |&e| (e, self.edges[e].src))
    }

    /// The set of nodes reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for (_, next) in self.successors(n) {
                if !seen.contains(&next) {
                    stack.push(next);
                }
            }
        }
        seen
    }

    /// A reverse post-order of the nodes reachable from `start`.
    pub fn reverse_postorder(&self, start: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.num_nodes];
        let mut order = Vec::new();
        // Iterative DFS with an explicit stack of (node, next successor index).
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        visited[start] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < self.succ[node].len() {
                let edge = self.succ[node][*idx];
                *idx += 1;
                let next = self.edges[edge].dst;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Enumerates every path (as a list of edge ids) from `from` to `to` with
    /// at most `max_len` edges.  Testing utility.
    pub fn enumerate_paths(&self, from: NodeId, to: NodeId, max_len: usize) -> Vec<Vec<EdgeId>> {
        let mut out = Vec::new();
        let mut current = Vec::new();
        self.enumerate_paths_rec(from, to, max_len, &mut current, &mut out);
        out
    }

    fn enumerate_paths_rec(
        &self,
        from: NodeId,
        to: NodeId,
        budget: usize,
        current: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        if from == to {
            out.push(current.clone());
        }
        if budget == 0 {
            return;
        }
        for (e, next) in self.successors(from) {
            current.push(e);
            self.enumerate_paths_rec(next, to, budget - 1, current, out);
            current.pop();
        }
    }

    /// Enumerates every path of exactly `len` edges starting at `from`
    /// (prefixes of ω-paths).  Testing utility.
    pub fn enumerate_prefixes(&self, from: NodeId, len: usize) -> Vec<Vec<EdgeId>> {
        let mut out = Vec::new();
        let mut current = Vec::new();
        self.enumerate_prefixes_rec(from, len, &mut current, &mut out);
        out
    }

    fn enumerate_prefixes_rec(
        &self,
        from: NodeId,
        remaining: usize,
        current: &mut Vec<EdgeId>,
        out: &mut Vec<Vec<EdgeId>>,
    ) {
        if remaining == 0 {
            out.push(current.clone());
            return;
        }
        for (e, next) in self.successors(from) {
            current.push(e);
            self.enumerate_prefixes_rec(next, remaining - 1, current, out);
            current.pop();
        }
    }
}

impl fmt::Display for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "digraph with {} nodes:", self.num_nodes)?;
        for (id, e) in self.edges() {
            writeln!(f, "  e{}: {} -> {}", id, e.src, e.dst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        let succs: Vec<NodeId> = g.successors(0).map(|(_, n)| n).collect();
        assert_eq!(succs, vec![1, 2]);
        let preds: Vec<NodeId> = g.predecessors(3).map(|(_, n)| n).collect();
        assert_eq!(preds, vec![1, 2]);
    }

    #[test]
    fn reachability_and_rpo() {
        let mut g = diamond();
        let isolated = g.add_node();
        let reach = g.reachable_from(0);
        assert!(reach.contains(&3));
        assert!(!reach.contains(&isolated));
        let rpo = g.reverse_postorder(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(*rpo.last().unwrap(), 3);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn path_enumeration() {
        let g = diamond();
        let paths = g.enumerate_paths(0, 3, 3);
        assert_eq!(paths.len(), 2);
        let prefixes = g.enumerate_prefixes(0, 2);
        assert_eq!(prefixes.len(), 2);
    }

    #[test]
    fn multi_edges_are_allowed() {
        let mut g = DiGraph::with_nodes(2);
        let e1 = g.add_edge(0, 1);
        let e2 = g.add_edge(0, 1);
        assert_ne!(e1, e2);
        assert_eq!(g.successors(0).count(), 2);
    }
}
