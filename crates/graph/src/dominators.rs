//! Dominator trees (Cooper–Harvey–Kennedy iterative algorithm).

use crate::{DiGraph, NodeId};
use std::collections::BTreeSet;

/// The dominator tree of a rooted directed graph.
///
/// Only nodes reachable from the root appear in the tree.  The root
/// dominates every reachable node; `idom(root)` is `None`.
///
/// # Examples
///
/// ```
/// use compact_graph::{DiGraph, DominatorTree};
/// let mut g = DiGraph::with_nodes(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// let dom = DominatorTree::compute(&g, 0);
/// assert_eq!(dom.idom(2), Some(1));
/// assert!(dom.dominates(0, 2));
/// ```
#[derive(Clone, Debug)]
pub struct DominatorTree {
    root: NodeId,
    idom: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    reachable: Vec<bool>,
}

impl DominatorTree {
    /// Computes the dominator tree of the graph rooted at `root`.
    pub fn compute(graph: &DiGraph, root: NodeId) -> DominatorTree {
        let n = graph.num_nodes();
        let rpo = graph.reverse_postorder(root);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &node) in rpo.iter().enumerate() {
            rpo_index[node] = i;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[root] = Some(root);

        let mut changed = true;
        while changed {
            changed = false;
            for &node in rpo.iter().skip(1) {
                // Intersect the dominators of all processed predecessors.
                let mut new_idom: Option<NodeId> = None;
                for (_, pred) in graph.predecessors(node) {
                    if rpo_index[pred] == usize::MAX || idom[pred].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(cur) => Self::intersect(&idom, &rpo_index, cur, pred),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[node] != Some(ni) {
                        idom[node] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        let mut reachable = vec![false; n];
        for &node in &rpo {
            reachable[node] = true;
        }
        for &node in &rpo {
            if node == root {
                continue;
            }
            if let Some(parent) = idom[node] {
                children[parent].push(node);
            }
        }
        // The root's self-idom is an implementation artifact.
        idom[root] = None;
        DominatorTree { root, idom, children, reachable }
    }

    fn intersect(
        idom: &[Option<NodeId>],
        rpo_index: &[usize],
        a: NodeId,
        b: NodeId,
    ) -> NodeId {
        let mut a = a;
        let mut b = b;
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    }

    /// The root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The immediate dominator of a node (`None` for the root and for
    /// unreachable nodes).
    pub fn idom(&self, node: NodeId) -> Option<NodeId> {
        self.idom[node]
    }

    /// The children of a node in the dominator tree.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node]
    }

    /// Returns `true` if the node is reachable from the root.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.reachable[node]
    }

    /// Returns `true` if `a` dominates `b` (every node dominates itself).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.reachable[a] || !self.reachable[b] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The set of nodes dominated by `node` (its dominator-tree subtree).
    pub fn dominated_by(&self, node: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if out.insert(n) {
                stack.extend(self.children(n).iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Figure 2a of the paper.
    ///
    /// Nodes 1..=5 (node 0 unused to keep the paper's numbering); edges:
    /// a: 1→2, b: 1→4, c: 2→2, d: 2→3, e: 4→3, f: 3→5, g: 5→4.
    fn figure2_graph() -> DiGraph {
        let mut g = DiGraph::with_nodes(6);
        g.add_edge(1, 2); // a
        g.add_edge(1, 4); // b
        g.add_edge(2, 2); // c
        g.add_edge(2, 3); // d
        g.add_edge(4, 3); // e
        g.add_edge(3, 5); // f
        g.add_edge(5, 4); // g
        g
    }

    #[test]
    fn figure2_dominator_tree() {
        let g = figure2_graph();
        let dom = DominatorTree::compute(&g, 1);
        // The paper's Figure 2b: children(1) = {2, 3, 4}, children(3) = {5}.
        assert_eq!(dom.idom(2), Some(1));
        assert_eq!(dom.idom(3), Some(1));
        assert_eq!(dom.idom(4), Some(1));
        assert_eq!(dom.idom(5), Some(3));
        let mut c1: Vec<_> = dom.children(1).to_vec();
        c1.sort();
        assert_eq!(c1, vec![2, 3, 4]);
        assert_eq!(dom.children(3), &[5]);
        assert!(dom.dominates(1, 5));
        assert!(dom.strictly_dominates(3, 5));
        assert!(!dom.dominates(2, 3));
        assert!(!dom.is_reachable(0));
    }

    #[test]
    fn diamond_dominators() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let dom = DominatorTree::compute(&g, 0);
        assert_eq!(dom.idom(3), Some(0));
        assert_eq!(dom.idom(1), Some(0));
        assert!(!dom.dominates(1, 3));
        assert_eq!(dom.dominated_by(0).len(), 4);
    }

    #[test]
    fn chain_dominators() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let dom = DominatorTree::compute(&g, 0);
        assert_eq!(dom.idom(3), Some(2));
        assert!(dom.dominates(1, 3));
        assert_eq!(dom.dominated_by(2), [2, 3].into_iter().collect());
    }

    #[test]
    fn loop_with_two_exits() {
        // 0 -> 1 -> 2 -> 1 (back edge), 1 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(1, 3);
        let dom = DominatorTree::compute(&g, 0);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert_eq!(dom.idom(3), Some(1));
    }
}
