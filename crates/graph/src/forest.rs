//! Compressed weighted forests (Tarjan 1979).
//!
//! The forest stores, for each non-root vertex, a parent pointer and a
//! regular-expression label; `eval(v)` returns the concatenation of the
//! labels from the root of `v`'s tree down to `v`, and `find(v)` returns that
//! root.  Path compression keeps the amortized cost of each operation
//! near-constant, which is what gives Algorithm 2 its
//! `O(|E| α(|E|) + t)` complexity.

use crate::NodeId;
use compact_regex::Regex;

/// A compressed weighted forest over nodes `0..n` with regular-expression
/// edge weights.
///
/// # Examples
///
/// ```
/// use compact_graph::WeightedForest;
/// use compact_regex::Regex;
/// let mut forest: WeightedForest<char> = WeightedForest::new(3);
/// forest.link(1, Regex::letter('a'), 0); // 0 --a--> 1
/// forest.link(2, Regex::letter('b'), 1); // 1 --b--> 2
/// assert_eq!(forest.find(2), 0);
/// assert_eq!(forest.eval(2).to_string(), "ab");
/// ```
#[derive(Clone, Debug)]
pub struct WeightedForest<L> {
    /// For each node: `None` if it is a root, otherwise the parent and the
    /// label of the edge from the parent to this node.
    parent: Vec<Option<(NodeId, Regex<L>)>>,
}

impl<L: Clone> WeightedForest<L> {
    /// Creates a forest of `n` isolated roots.
    pub fn new(n: usize) -> WeightedForest<L> {
        WeightedForest { parent: vec![None; n] }
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Makes `parent_node` the parent of `child` with edge label `label`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is not currently a root.
    pub fn link(&mut self, child: NodeId, label: Regex<L>, parent_node: NodeId) {
        assert!(
            self.parent[child].is_none(),
            "link: node {} is not a root",
            child
        );
        self.parent[child] = Some((parent_node, label));
    }

    /// The root of the tree containing `v`.
    pub fn find(&mut self, v: NodeId) -> NodeId {
        self.compress(v).0
    }

    /// The concatenation of edge labels from the root of `v`'s tree to `v`
    /// (the empty word if `v` is a root).
    pub fn eval(&mut self, v: NodeId) -> Regex<L> {
        self.compress(v).1
    }

    /// Path compression: after this call, `v` points directly at its root
    /// with the accumulated label.
    fn compress(&mut self, v: NodeId) -> (NodeId, Regex<L>) {
        // Collect the path to the root iteratively to avoid deep recursion.
        let mut path = Vec::new();
        let mut cur = v;
        loop {
            match &self.parent[cur] {
                None => break,
                Some((p, _)) => {
                    path.push(cur);
                    cur = *p;
                }
            }
        }
        let root = cur;
        // Recompute labels top-down so each node on the path points at the
        // root with the full concatenation.
        let mut acc: Regex<L> = Regex::one();
        for &node in path.iter().rev() {
            let (_, label) = self.parent[node].clone().expect("node on path has parent");
            // Note: the parent currently stored may already be the root (from
            // an earlier compression), in which case `label` is already the
            // full product from the root to `node`'s old parent... To keep
            // the accumulation correct we must use the label relative to the
            // stored parent, which `acc` tracks because we walk the stored
            // parent chain.
            acc = Regex::cat(acc.clone(), label);
            self.parent[node] = Some((root, acc.clone()));
        }
        if path.is_empty() {
            (root, Regex::one())
        } else {
            (root, self.parent[v].clone().expect("compressed").1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_evaluate_to_one() {
        let mut f: WeightedForest<char> = WeightedForest::new(2);
        assert_eq!(f.find(0), 0);
        assert!(f.eval(0).is_one());
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn chain_concatenates_in_order() {
        let mut f: WeightedForest<char> = WeightedForest::new(4);
        // Build 0 --a--> 1 --b--> 2 --c--> 3
        f.link(1, Regex::letter('a'), 0);
        f.link(2, Regex::letter('b'), 1);
        f.link(3, Regex::letter('c'), 2);
        assert_eq!(f.eval(3).to_string(), "abc");
        assert_eq!(f.eval(2).to_string(), "ab");
        assert_eq!(f.find(3), 0);
        // Evaluate again after compression: results must be stable.
        assert_eq!(f.eval(3).to_string(), "abc");
        assert_eq!(f.eval(1).to_string(), "a");
    }

    #[test]
    fn relink_after_compression() {
        let mut f: WeightedForest<char> = WeightedForest::new(4);
        f.link(1, Regex::letter('a'), 0);
        f.link(2, Regex::letter('b'), 1);
        assert_eq!(f.eval(2).to_string(), "ab");
        // Link the old root 0 under a new root 3.
        f.link(0, Regex::letter('r'), 3);
        assert_eq!(f.find(2), 3);
        assert_eq!(f.eval(2).to_string(), "rab");
        assert_eq!(f.eval(0).to_string(), "r");
    }

    #[test]
    #[should_panic(expected = "not a root")]
    fn double_link_panics() {
        let mut f: WeightedForest<char> = WeightedForest::new(3);
        f.link(1, Regex::letter('a'), 0);
        f.link(1, Regex::letter('b'), 2);
    }

    #[test]
    fn figure2_forest() {
        // The weighted forest of Figure 2c: eventually 2, 3, 4 all link to 1.
        // Node ids match the paper (0 unused).
        let mut f: WeightedForest<&'static str> = WeightedForest::new(6);
        f.link(5, Regex::letter("f"), 3); // 3 --f--> 5 (from solve-sparse(3))
        // After processing component {2}: link 2 to 1 with a c*.
        f.link(
            2,
            Regex::cat(Regex::letter("a"), Regex::star(Regex::letter("c"))),
            1,
        );
        assert_eq!(f.eval(2).to_string(), "a(c)*");
        assert_eq!(f.find(5), 3);
        assert_eq!(f.eval(5).to_string(), "f");
    }
}
