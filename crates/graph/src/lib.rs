//! Control-flow-graph algorithms for algebraic program analysis.
//!
//! This crate implements the graph-algorithmic substrate of §4 of
//! *"Termination Analysis without the Tears"*:
//!
//! * [`DiGraph`] — a small directed multigraph;
//! * [`DominatorTree`] — dominator trees (iterative algorithm);
//! * [`SccDecomposition`] — Tarjan strongly connected components in
//!   topological order;
//! * [`WeightedForest`] — the compressed weighted forest data structure
//!   (Tarjan 1979) with path compression;
//! * [`solve_dense`] — Algorithm 1, the naïve path-expression algorithm;
//! * [`omega_path_expression`] — Algorithm 2, the nearly linear ω-path
//!   expression algorithm (`solve-sparse`);
//! * [`path_expression_to`] / [`single_source_path_expressions`] — finite
//!   path expressions used for procedure summaries.
//!
//! # Examples
//!
//! ```
//! use compact_graph::{DiGraph, omega_path_expression};
//! // A single loop: 0 -> 1 -> 2 -> 1.
//! let mut g = DiGraph::with_nodes(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 1);
//! let expr = omega_path_expression(&g, 0);
//! assert!(!expr.is_zero());
//! ```

#![warn(missing_docs)]

mod digraph;
mod dominators;
mod forest;
mod path_expr;
mod scc;

pub use digraph::{DiGraph, Edge, EdgeId, NodeId};
pub use dominators::DominatorTree;
pub use forest::WeightedForest;
pub use path_expr::{
    omega_path_expression, path_expression_to, single_source_path_expressions, solve_dense,
    DenseSolution, PathGraph,
};
pub use scc::SccDecomposition;
