//! Path-expression algorithms (§4 of the paper).
//!
//! * [`solve_dense`] — Algorithm 1, the naïve state-elimination algorithm on
//!   a *path graph* (a graph whose edges are labeled by regular expressions
//!   over the edges of an underlying flow graph).
//! * [`omega_path_expression`] — Algorithm 2 (`solve-sparse`), the nearly
//!   linear algorithm that uses the dominator tree and a compressed weighted
//!   forest to compute an ω-regular expression recognizing all infinite
//!   paths from the root.
//! * [`path_expression_to`] — a finite-path variant used for procedure
//!   summaries (paths from the root to a designated exit vertex).
//!
//! The alphabet of the produced expressions is [`EdgeId`]: each letter is an
//! edge of the underlying graph.

use crate::{DiGraph, DominatorTree, EdgeId, NodeId, SccDecomposition, WeightedForest};
use compact_regex::{OmegaRegex, Regex};
use std::collections::HashMap;

/// A path graph: a set of vertices of an underlying flow graph together with
/// edges labeled by regular expressions over the flow graph's edges.
#[derive(Clone, Debug, Default)]
pub struct PathGraph {
    /// Vertices of the path graph (vertex ids of the underlying flow graph).
    pub vertices: Vec<NodeId>,
    /// Weighted edges `(src, label, dst)`.
    pub edges: Vec<(NodeId, Regex<EdgeId>, NodeId)>,
}

impl PathGraph {
    /// Creates a path graph with the given vertices and no edges.
    pub fn new(vertices: Vec<NodeId>) -> PathGraph {
        PathGraph { vertices, edges: Vec::new() }
    }

    /// Adds a weighted edge.
    pub fn add_edge(&mut self, src: NodeId, label: Regex<EdgeId>, dst: NodeId) {
        self.edges.push((src, label, dst));
    }
}

/// The result of [`solve_dense`]: an ω-path expression for the root and a
/// finite path expression from the root to every vertex of the path graph.
#[derive(Clone, Debug)]
pub struct DenseSolution {
    /// Recognizes the ω-paths represented by the path graph, starting at the
    /// root.
    pub omega: OmegaRegex<EdgeId>,
    /// For each vertex, a path expression recognizing the represented paths
    /// from the root to that vertex.
    pub to_vertex: HashMap<NodeId, Regex<EdgeId>>,
}

/// Algorithm 1: the naïve path-expression algorithm (state elimination) on a
/// path graph rooted at `root`.
///
/// `root` must have no incoming edges in the path graph.
pub fn solve_dense(graph: &PathGraph, root: NodeId) -> DenseSolution {
    // Order the vertices as v0 = root, v1, ..., vn.
    let mut order: Vec<NodeId> = vec![root];
    for &v in &graph.vertices {
        if v != root {
            order.push(v);
        }
    }
    let n = order.len() - 1;
    let index: HashMap<NodeId, usize> = order.iter().copied().enumerate().map(|(i, v)| (v, i)).collect();

    // pe[i][j] recognizes the paths from order[i] to order[j].
    let mut pe: Vec<Vec<Regex<EdgeId>>> = vec![vec![Regex::zero(); n + 1]; n + 1];
    for (src, label, dst) in &graph.edges {
        let (Some(&i), Some(&j)) = (index.get(src), index.get(dst)) else {
            continue;
        };
        debug_assert_ne!(j, 0, "root of a path graph must have no incoming edges");
        pe[i][j] = Regex::plus(pe[i][j].clone(), label.clone());
    }

    // State elimination.
    for i in (1..=n).rev() {
        for j in (0..i).rev() {
            let e_ji = Regex::cat(pe[j][i].clone(), Regex::star(pe[i][i].clone()));
            if e_ji.is_zero() {
                continue;
            }
            for k in (1..=n).rev() {
                if k == i {
                    continue;
                }
                let addition = Regex::cat(e_ji.clone(), pe[i][k].clone());
                pe[j][k] = Regex::plus(pe[j][k].clone(), addition);
            }
        }
    }

    // Assemble the results.
    let mut omega = OmegaRegex::zero();
    for i in 1..=n {
        let contribution = OmegaRegex::cat(
            pe[0][i].clone(),
            OmegaRegex::omega(pe[i][i].clone()),
        );
        omega = OmegaRegex::plus(omega, contribution);
    }
    let mut to_vertex = HashMap::new();
    for (i, &v) in order.iter().enumerate() {
        let expr = if i == 0 {
            Regex::star(pe[0][0].clone())
        } else {
            Regex::cat(pe[0][i].clone(), Regex::star(pe[i][i].clone()))
        };
        to_vertex.insert(v, expr);
    }
    DenseSolution { omega, to_vertex }
}

/// Algorithm 2 (`PathExpω`): computes an ω-regular expression recognizing all
/// infinite paths of `graph` starting at `root`.
///
/// The letters of the result are edge identifiers of `graph`.
///
/// # Panics
///
/// Panics if `root` has incoming edges (the paper's CFG definition requires a
/// root with no incoming edges; front ends introduce a fresh entry vertex).
pub fn omega_path_expression(graph: &DiGraph, root: NodeId) -> OmegaRegex<EdgeId> {
    assert_eq!(
        graph.predecessors(root).count(),
        0,
        "omega_path_expression: the root must have no incoming edges"
    );
    let dom = DominatorTree::compute(graph, root);
    let mut state = SparseState {
        graph,
        dom: &dom,
        forest: WeightedForest::new(graph.num_nodes()),
    };
    state.solve_sparse(root)
}

struct SparseState<'a> {
    graph: &'a DiGraph,
    dom: &'a DominatorTree,
    forest: WeightedForest<EdgeId>,
}

impl<'a> SparseState<'a> {
    /// The `solve-sparse(v)` subroutine of Algorithm 2.
    fn solve_sparse(&mut self, v: NodeId) -> OmegaRegex<EdgeId> {
        // Recurse into the dominator-tree children first.
        let children: Vec<NodeId> = self.dom.children(v).to_vec();
        let mut child_omega: HashMap<NodeId, OmegaRegex<EdgeId>> = HashMap::new();
        for &c in &children {
            let pe = self.solve_sparse(c);
            child_omega.insert(c, pe);
        }

        // Sibling graph: vertices are the children of v; there is an edge
        // (find(u), c) for every flow edge (u, c) with c a child of v and
        // find(u) also a child of v.
        let is_child: std::collections::HashSet<NodeId> = children.iter().copied().collect();
        let mut sibling = DiGraph::with_nodes(self.graph.num_nodes());
        for &c in &children {
            for (_, u) in self.graph.predecessors(c) {
                if !self.dom.is_reachable(u) {
                    continue;
                }
                let fu = self.forest.find(u);
                if is_child.contains(&fu) {
                    sibling.add_edge(fu, c);
                }
            }
        }
        let sccs = SccDecomposition::compute_on(&sibling, &children);

        let mut omega = OmegaRegex::zero();
        for component in sccs.components() {
            // Component graph: vertices C ∪ {v}, complete for E|_v.
            let mut component_graph = PathGraph::new(
                std::iter::once(v).chain(component.iter().copied()).collect(),
            );
            let in_component: std::collections::HashSet<NodeId> =
                component.iter().copied().collect();
            for &u in component {
                for (edge_id, w) in self.graph.predecessors(u) {
                    if !self.dom.is_reachable(w) {
                        continue;
                    }
                    let fw = self.forest.find(w);
                    if fw != v && !in_component.contains(&fw) {
                        // Predecessor belongs to a later component (possible
                        // only through edges that are not in E|_v restricted
                        // to processed vertices); skip it — such paths enter
                        // the component through another edge that is
                        // captured when its component is processed.
                        continue;
                    }
                    let label = Regex::cat(self.forest.eval(w), Regex::letter(edge_id));
                    component_graph.add_edge(fw, label, u);
                }
            }
            let solution = solve_dense(&component_graph, v);
            omega = OmegaRegex::plus(omega, solution.omega);
            for &u in component {
                let pe_u = solution.to_vertex[&u].clone();
                self.forest.link(u, pe_u.clone(), v);
                if let Some(child_pe) = child_omega.get(&u) {
                    omega = OmegaRegex::plus(omega, OmegaRegex::cat(pe_u, child_pe.clone()));
                }
            }
        }
        omega
    }
}

/// Computes a regular expression recognizing all paths from `root` to
/// `target` in the graph, via state elimination over the whole graph.
///
/// This is the finite-path companion of [`omega_path_expression`], used to
/// compute procedure summaries (`PathExp_G(entry, exit)` in §5.2).
pub fn path_expression_to(graph: &DiGraph, root: NodeId, target: NodeId) -> Regex<EdgeId> {
    let reachable = graph.reachable_from(root);
    if !reachable.contains(&target) {
        return Regex::zero();
    }
    // Build a path graph over the reachable vertices with one letter per
    // edge.  If the root has incoming edges, introduce a virtual root.
    let has_root_preds = graph.predecessors(root).count() > 0;
    let virtual_root = graph.num_nodes();
    let mut vertices: Vec<NodeId> = reachable.iter().copied().collect();
    let start = if has_root_preds {
        vertices.push(virtual_root);
        virtual_root
    } else {
        root
    };
    let mut pg = PathGraph::new(vertices);
    if has_root_preds {
        pg.add_edge(virtual_root, Regex::one(), root);
    }
    for (id, e) in graph.edges() {
        if reachable.contains(&e.src) && reachable.contains(&e.dst) {
            pg.add_edge(e.src, Regex::letter(id), e.dst);
        }
    }
    let solution = solve_dense(&pg, start);
    solution.to_vertex.get(&target).cloned().unwrap_or_else(Regex::zero)
}

/// Computes path expressions from `root` to every reachable vertex.
pub fn single_source_path_expressions(
    graph: &DiGraph,
    root: NodeId,
) -> HashMap<NodeId, Regex<EdgeId>> {
    let reachable = graph.reachable_from(root);
    let has_root_preds = graph.predecessors(root).count() > 0;
    let virtual_root = graph.num_nodes();
    let mut vertices: Vec<NodeId> = reachable.iter().copied().collect();
    let start = if has_root_preds {
        vertices.push(virtual_root);
        virtual_root
    } else {
        root
    };
    let mut pg = PathGraph::new(vertices);
    if has_root_preds {
        pg.add_edge(virtual_root, Regex::one(), root);
    }
    for (id, e) in graph.edges() {
        if reachable.contains(&e.src) && reachable.contains(&e.dst) {
            pg.add_edge(e.src, Regex::letter(id), e.dst);
        }
    }
    let mut solution = solve_dense(&pg, start).to_vertex;
    solution.remove(&virtual_root);
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_regex::{enumerate_words, omega_prefix_words};
    use std::collections::BTreeSet;

    /// Checks that the ω-path expression for `graph`/`root` recognizes
    /// exactly the length-`len` prefixes of infinite paths from `root`.
    ///
    /// Since every finite prefix of an infinite path can be extended iff it
    /// ends at a vertex from which a cycle is reachable, we compare against
    /// graph enumeration of prefixes that can be extended to length
    /// `len + slack` (a crude but effective finite check).
    fn check_omega_prefixes(graph: &DiGraph, root: NodeId, expr: &OmegaRegex<EdgeId>, len: usize) {
        let expr_prefixes: BTreeSet<Vec<EdgeId>> = omega_prefix_words(expr, len);
        // Graph prefixes of length `len` that can be extended much further
        // (a proxy for "lies on an infinite path").
        let slack = graph.num_nodes() + 2;
        let long: BTreeSet<Vec<EdgeId>> = graph
            .enumerate_prefixes(root, len + slack)
            .into_iter()
            .map(|p| p[..len].to_vec())
            .collect();
        assert_eq!(expr_prefixes, long, "prefix mismatch at length {}", len);
    }

    /// The flow graph of Figure 2a (nodes 1..=5; node 0 unused).
    fn figure2_graph() -> DiGraph {
        let mut g = DiGraph::with_nodes(6);
        g.add_edge(1, 2); // 0: a
        g.add_edge(1, 4); // 1: b
        g.add_edge(2, 2); // 2: c
        g.add_edge(2, 3); // 3: d
        g.add_edge(4, 3); // 4: e
        g.add_edge(3, 5); // 5: f
        g.add_edge(5, 4); // 6: g
        g
    }

    /// The CFG of Figure 1b: r,a,b,c,d,e,f = 0..6 (f unused sink removed —
    /// the halt vertex has no outgoing edges).
    fn figure1_graph() -> DiGraph {
        let mut g = DiGraph::with_nodes(7);
        g.add_edge(0, 1); // 0: r->a   step := 8
        g.add_edge(1, 2); // 1: a->b   m := 0
        g.add_edge(2, 1); // 2: b->a   [m >= step]
        g.add_edge(2, 3); // 3: b->c   [m < step]
        g.add_edge(3, 6); // 4: c->f   [n < 0] halt
        g.add_edge(3, 4); // 5: c->d   [n >= 0]
        g.add_edge(4, 5); // 6: d->e   m := m+1
        g.add_edge(5, 2); // 7: e->b   n := n-1
        g
    }

    #[test]
    fn solve_dense_simple_loop() {
        // 0 -> 1, 1 -> 1 (self loop), 1 -> 2.
        let mut pg = PathGraph::new(vec![0, 1, 2]);
        pg.add_edge(0, Regex::letter(10), 1);
        pg.add_edge(1, Regex::letter(11), 1);
        pg.add_edge(1, Regex::letter(12), 2);
        let sol = solve_dense(&pg, 0);
        let words_to_2 = enumerate_words(&sol.to_vertex[&2], 4);
        assert!(words_to_2.contains(&vec![10, 12]));
        assert!(words_to_2.contains(&vec![10, 11, 12]));
        assert!(words_to_2.contains(&vec![10, 11, 11, 12]));
        assert!(!words_to_2.contains(&vec![10, 11]));
        // ω-paths loop at vertex 1 forever.
        let prefixes = omega_prefix_words(&sol.omega, 3);
        assert!(prefixes.contains(&vec![10, 11, 11]));
        assert_eq!(prefixes.len(), 1);
    }

    #[test]
    fn sparse_matches_prefixes_on_figure2() {
        let g = figure2_graph();
        let expr = omega_path_expression(&g, 1);
        for len in 1..=6 {
            check_omega_prefixes(&g, 1, &expr, len);
        }
    }

    #[test]
    fn sparse_matches_prefixes_on_figure1() {
        let g = figure1_graph();
        let expr = omega_path_expression(&g, 0);
        for len in 1..=7 {
            check_omega_prefixes(&g, 0, &expr, len);
        }
    }

    #[test]
    fn sparse_on_nested_loops() {
        // 0 -> 1; 1 -> 2 -> 1 (inner); 1 -> 3 -> 0'? Use: outer loop 1->2->1,
        // plus 2 -> 3 -> 2 nested differently, and an exit 1 -> 4.
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        g.add_edge(1, 4);
        let expr = omega_path_expression(&g, 0);
        for len in 1..=6 {
            check_omega_prefixes(&g, 0, &expr, len);
        }
    }

    #[test]
    fn sparse_on_irreducible_graph() {
        // Irreducible: 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1 (cycle {1,2} with two
        // entries).
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let expr = omega_path_expression(&g, 0);
        for len in 1..=6 {
            check_omega_prefixes(&g, 0, &expr, len);
        }
    }

    #[test]
    fn sparse_on_dag_has_empty_omega_language() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let expr = omega_path_expression(&g, 0);
        assert!(omega_prefix_words(&expr, 1).is_empty());
    }

    #[test]
    fn path_expression_to_exit() {
        let g = figure1_graph();
        // Paths from r (0) to the halt vertex f (6).
        let expr = path_expression_to(&g, 0, 6);
        let words = enumerate_words(&expr, 6);
        // Shortest path: r->a (0), a->b (1), b->c (3), c->f (4).
        assert!(words.contains(&vec![0, 1, 3, 4]));
        // All enumerated words must be actual paths from 0 to 6.
        let actual: BTreeSet<Vec<EdgeId>> = g.enumerate_paths(0, 6, 6).into_iter().collect();
        for w in &words {
            assert!(actual.contains(w), "{:?} is not a path", w);
        }
        // And vice versa for bounded length.
        for p in &actual {
            assert!(words.contains(p), "path {:?} not recognized", p);
        }
    }

    #[test]
    fn path_expression_with_root_self_loop() {
        // The root has an incoming edge; a virtual root is introduced.
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let expr = path_expression_to(&g, 0, 1);
        let words = enumerate_words(&expr, 4);
        assert!(words.contains(&vec![0]));
        assert!(words.contains(&vec![0, 1, 0]));
    }

    #[test]
    fn single_source_expressions_cover_all_reachable() {
        let g = figure2_graph();
        let exprs = single_source_path_expressions(&g, 1);
        for v in [2usize, 3, 4, 5] {
            let words = enumerate_words(&exprs[&v], 5);
            let actual: BTreeSet<Vec<EdgeId>> = g.enumerate_paths(1, v, 5).into_iter().collect();
            let bounded: BTreeSet<Vec<EdgeId>> =
                words.into_iter().filter(|w| w.len() <= 5).collect();
            assert_eq!(bounded, actual, "mismatch for vertex {}", v);
        }
    }
}
