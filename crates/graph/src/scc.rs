//! Strongly connected components (Tarjan's algorithm) and topological order.

use crate::{DiGraph, NodeId};

/// The strongly connected components of a graph, in topological order
/// (components with no incoming edges from other components come first).
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    components: Vec<Vec<NodeId>>,
    component_of: Vec<usize>,
}

impl SccDecomposition {
    /// Computes the SCCs of the sub-graph induced by `nodes`, considering
    /// only edges between nodes of the set.
    pub fn compute_on(graph: &DiGraph, nodes: &[NodeId]) -> SccDecomposition {
        let in_set = {
            let mut v = vec![false; graph.num_nodes()];
            for &n in nodes {
                v[n] = true;
            }
            v
        };
        Tarjan::run(graph, nodes, &in_set)
    }

    /// Computes the SCCs of the whole graph.
    pub fn compute(graph: &DiGraph) -> SccDecomposition {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        SccDecomposition::compute_on(graph, &nodes)
    }

    /// The components in topological order.
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// The index (in [`Self::components`]) of the component containing a
    /// node, or `usize::MAX` if the node was not part of the input set.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component_of[node]
    }
}

struct Tarjan<'a> {
    graph: &'a DiGraph,
    in_set: &'a [bool],
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<NodeId>,
    next_index: usize,
    components: Vec<Vec<NodeId>>,
}

impl<'a> Tarjan<'a> {
    fn run(graph: &DiGraph, nodes: &[NodeId], in_set: &[bool]) -> SccDecomposition {
        let n = graph.num_nodes();
        let mut t = Tarjan {
            graph,
            in_set,
            index: vec![usize::MAX; n],
            lowlink: vec![usize::MAX; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        };
        for &v in nodes {
            if t.index[v] == usize::MAX {
                t.strongconnect(v);
            }
        }
        // Tarjan produces components in reverse topological order.
        t.components.reverse();
        let mut component_of = vec![usize::MAX; n];
        for (i, comp) in t.components.iter().enumerate() {
            for &v in comp {
                component_of[v] = i;
            }
        }
        SccDecomposition { components: t.components, component_of }
    }

    fn strongconnect(&mut self, v: NodeId) {
        // Iterative DFS to avoid stack overflows on long chains.
        enum Frame {
            Enter(NodeId),
            Continue(NodeId, usize),
        }
        let mut work = vec![Frame::Enter(v)];
        // Track the DFS parent relationship for lowlink propagation.
        let mut parents: Vec<(NodeId, NodeId)> = Vec::new();
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    self.index[v] = self.next_index;
                    self.lowlink[v] = self.next_index;
                    self.next_index += 1;
                    self.stack.push(v);
                    self.on_stack[v] = true;
                    work.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, succ_idx) => {
                    let succs: Vec<NodeId> = self
                        .graph
                        .successors(v)
                        .map(|(_, w)| w)
                        .filter(|&w| self.in_set[w])
                        .collect();
                    if succ_idx < succs.len() {
                        let w = succs[succ_idx];
                        work.push(Frame::Continue(v, succ_idx + 1));
                        if self.index[w] == usize::MAX {
                            parents.push((v, w));
                            work.push(Frame::Enter(w));
                        } else if self.on_stack[w] {
                            self.lowlink[v] = self.lowlink[v].min(self.index[w]);
                        }
                    } else {
                        // Finished v: propagate lowlink to its DFS parent.
                        if let Some(&(p, child)) = parents.last() {
                            if child == v {
                                self.lowlink[p] = self.lowlink[p].min(self.lowlink[v]);
                                parents.pop();
                            }
                        }
                        if self.lowlink[v] == self.index[v] {
                            let mut comp = Vec::new();
                            loop {
                                let w = self.stack.pop().expect("scc stack underflow");
                                self.on_stack[w] = false;
                                comp.push(w);
                                if w == v {
                                    break;
                                }
                            }
                            self.components.push(comp);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.components().len(), 1);
        assert_eq!(scc.components()[0].len(), 3);
    }

    #[test]
    fn dag_components_are_singletons_in_topological_order() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.components().len(), 4);
        // Topological: 0 before 1 and 2, which are before 3.
        let pos = |n: NodeId| scc.component_of(n);
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn two_cycles_in_order() {
        // {0,1} -> {2,3}
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.components().len(), 2);
        assert!(scc.component_of(0) < scc.component_of(2));
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
    }

    #[test]
    fn restricted_node_set() {
        // Full graph is a cycle 0->1->2->0, but restricted to {0, 1} there is
        // no cycle.
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let scc = SccDecomposition::compute_on(&g, &[0, 1]);
        assert_eq!(scc.components().len(), 2);
        assert_eq!(scc.component_of(2), usize::MAX);
    }

    #[test]
    fn figure2_sibling_graph_sccs() {
        // The sibling graph of node 1 in Figure 2d: nodes {2, 3, 4} with
        // edges 2->3, 3->4, 4->3.
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 3);
        let scc = SccDecomposition::compute_on(&g, &[2, 3, 4]);
        assert_eq!(scc.components().len(), 2);
        assert_eq!(scc.components()[0], vec![2]);
        let mut second = scc.components()[1].clone();
        second.sort();
        assert_eq!(second, vec![3, 4]);
    }
}
