//! Abstract syntax of the mini imperative language.
//!
//! The language is deliberately small — integer variables, assignments,
//! non-deterministic choice, `while`/`if`, `assume`, `halt` and procedure
//! calls — but expressive enough to encode the benchmark programs of the
//! paper's evaluation (§7): conditional control flow is compiled to
//! assumptions exactly as in Figure 1.

use compact_logic::{Formula, Term};
use std::fmt;

/// An integer expression: either a linear term or a non-deterministic value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A linear term over the program variables.
    Linear(Term),
    /// A non-deterministic integer (`nondet()` / `*`).
    Nondet,
}

/// A boolean condition: either a formula or a non-deterministic choice.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// A quantifier-free LIA formula over the program variables.
    Formula(Formula),
    /// Non-deterministic choice (`*`).
    Nondet,
}

impl Cond {
    /// The formula assumed when the condition is taken.
    pub fn assumed(&self) -> Formula {
        match self {
            Cond::Formula(f) => f.clone(),
            Cond::Nondet => Formula::True,
        }
    }

    /// The formula assumed when the condition is *not* taken.
    pub fn refuted(&self) -> Formula {
        match self {
            Cond::Formula(f) => Formula::not(f.clone()),
            Cond::Nondet => Formula::True,
        }
    }
}

/// A statement of the mini language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `x := e;`
    Assign(String, Expr),
    /// `assume(c);` — blocks unless the condition holds.
    Assume(Formula),
    /// `if (c) { … } else { … }` (the else branch may be empty).
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { … }`
    While(Cond, Vec<Stmt>),
    /// `halt;` — terminates the whole program.
    Halt,
    /// `skip;`
    Skip,
    /// `call p();` — invokes procedure `p` (all variables are global).
    Call(String),
}

/// A procedure definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcDef {
    /// The procedure name.
    pub name: String,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A parsed program: a list of procedure definitions.
///
/// The entry point is the procedure named `main` if present, otherwise the
/// first procedure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceProgram {
    /// The procedures, in source order.
    pub procedures: Vec<ProcDef>,
}

impl SourceProgram {
    /// The name of the entry procedure.
    pub fn entry_name(&self) -> &str {
        self.procedures
            .iter()
            .find(|p| p.name == "main")
            .unwrap_or(&self.procedures[0])
            .name
            .as_str()
    }

    /// Looks up a procedure by name.
    pub fn procedure(&self, name: &str) -> Option<&ProcDef> {
        self.procedures.iter().find(|p| p.name == name)
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign(x, Expr::Linear(t)) => write!(f, "{} := {};", x, t),
            Stmt::Assign(x, Expr::Nondet) => write!(f, "{} := nondet();", x),
            Stmt::Assume(c) => write!(f, "assume({});", c),
            Stmt::If(c, _, _) => write!(f, "if ({:?}) {{ … }}", c),
            Stmt::While(c, _) => write!(f, "while ({:?}) {{ … }}", c),
            Stmt::Halt => write!(f, "halt;"),
            Stmt::Skip => write!(f, "skip;"),
            Stmt::Call(p) => write!(f, "call {}();", p),
        }
    }
}
