//! The mini imperative language front end for the ComPACT termination
//! analyzer.
//!
//! The paper's implementation analyzes C programs through a goto-program
//! front end; this crate provides the equivalent plumbing for a small
//! imperative language with integer variables, `while`/`if`, `assume`,
//! non-determinism, `halt` and (parameterless, global-variable) procedure
//! calls — the program model of §3.4 / §5.2:
//!
//! * [`parse_source`] / [`SourceProgram`] — concrete syntax and AST;
//! * [`compile`] / [`Program`] — lowering to labeled control flow graphs
//!   whose edges carry [`compact_tf::TransitionFormula`]s or procedure
//!   calls.
//!
//! # Examples
//!
//! ```
//! use compact_lang::compile;
//! let program = compile(r#"
//!     proc main() {
//!         while (x > 0) { x := x - 1; }
//!     }
//! "#).unwrap();
//! assert_eq!(program.entry, "main");
//! ```

#![warn(missing_docs)]

mod ast;
mod lower;
mod parser;

pub use ast::{Cond, Expr, ProcDef, SourceProgram, Stmt};
pub use lower::{assume_formula, compile, lower, CompileError, EdgeLabel, Procedure, Program};
pub use parser::{parse_source, ParseError};

/// Parses a program (alias of [`parse_source`] kept for discoverability from
/// the façade crate).
pub fn parse_program(source: &str) -> Result<SourceProgram, ParseError> {
    parse_source(source)
}
