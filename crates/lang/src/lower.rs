//! Lowering from the AST to labeled control flow graphs (the program model
//! of §3.4 and §5.2 of the paper).

use crate::ast::{Cond, Expr, SourceProgram, Stmt};
use crate::parser::{parse_source, ParseError};
use compact_graph::{DiGraph, EdgeId, NodeId};
use compact_logic::{Formula, Symbol};
use compact_tf::TransitionFormula;
use std::collections::BTreeSet;
use std::fmt;

/// The label of a control-flow edge: either a transition formula or a
/// procedure call (§5.2).
#[derive(Clone, Debug)]
pub enum EdgeLabel {
    /// An intra-procedural step.
    Transition(TransitionFormula),
    /// A call to the named procedure.
    Call(String),
}

impl EdgeLabel {
    /// Returns the transition formula, if this is not a call.
    pub fn as_transition(&self) -> Option<&TransitionFormula> {
        match self {
            EdgeLabel::Transition(t) => Some(t),
            EdgeLabel::Call(_) => None,
        }
    }

    /// Returns the called procedure name, if this is a call.
    pub fn as_call(&self) -> Option<&str> {
        match self {
            EdgeLabel::Transition(_) => None,
            EdgeLabel::Call(name) => Some(name),
        }
    }
}

/// A lowered procedure: a control flow graph with labeled edges, an entry
/// vertex (with no incoming edges) and an exit vertex.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// The procedure name.
    pub name: String,
    /// The control flow graph.
    pub graph: DiGraph,
    /// The entry vertex (no incoming edges).
    pub entry: NodeId,
    /// The exit vertex.
    pub exit: NodeId,
    /// Edge labels, indexed by [`EdgeId`].
    pub labels: Vec<EdgeLabel>,
}

impl Procedure {
    /// The label of an edge.
    pub fn label(&self, edge: EdgeId) -> &EdgeLabel {
        &self.labels[edge]
    }

    /// Returns `true` if the procedure contains a call edge.
    pub fn has_calls(&self) -> bool {
        self.labels.iter().any(|l| l.as_call().is_some())
    }

    /// The names of procedures called by this procedure.
    pub fn callees(&self) -> BTreeSet<String> {
        self.labels
            .iter()
            .filter_map(|l| l.as_call().map(str::to_string))
            .collect()
    }
}

/// A lowered program: the global variables and one [`Procedure`] per source
/// procedure.
#[derive(Clone, Debug)]
pub struct Program {
    /// The global program variables (all variables are global, §5.2).
    pub vars: Vec<Symbol>,
    /// The procedures.
    pub procedures: Vec<Procedure>,
    /// The name of the entry procedure.
    pub entry: String,
}

impl Program {
    /// Looks up a procedure by name.
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// The entry procedure.
    pub fn entry_procedure(&self) -> &Procedure {
        self.procedure(&self.entry).expect("entry procedure exists")
    }

    /// Returns `true` if any procedure performs a call.
    pub fn has_calls(&self) -> bool {
        self.procedures.iter().any(Procedure::has_calls)
    }

    /// The total number of control-flow edges.
    pub fn num_edges(&self) -> usize {
        self.procedures.iter().map(|p| p.graph.num_edges()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program with {} procedure(s), {} variable(s), {} edge(s)",
            self.procedures.len(),
            self.vars.len(),
            self.num_edges()
        )
    }
}

/// Error produced by [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The source failed to parse.
    Parse(ParseError),
    /// A call targets an undefined procedure.
    UndefinedProcedure(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{}", e),
            CompileError::UndefinedProcedure(name) => {
                write!(f, "call to undefined procedure `{}`", name)
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

/// Parses and lowers a program in one step.
///
/// # Errors
///
/// Returns a [`CompileError`] for syntax errors or calls to undefined
/// procedures.
///
/// # Examples
///
/// ```
/// use compact_lang::compile;
/// let program = compile("proc main() { while (x > 0) { x := x - 1; } }").unwrap();
/// assert_eq!(program.procedures.len(), 1);
/// assert!(!program.has_calls());
/// ```
pub fn compile(source: &str) -> Result<Program, CompileError> {
    let ast = parse_source(source)?;
    lower(&ast)
}

/// Lowers a parsed program to its control-flow-graph representation.
///
/// # Errors
///
/// Returns [`CompileError::UndefinedProcedure`] if a call targets a
/// procedure that is not defined.
pub fn lower(source: &SourceProgram) -> Result<Program, CompileError> {
    // Collect the global variable set.
    let mut vars: BTreeSet<Symbol> = BTreeSet::new();
    for proc_def in &source.procedures {
        collect_vars(&proc_def.body, &mut vars);
    }
    let vars: Vec<Symbol> = vars.into_iter().collect();

    let names: BTreeSet<&str> = source.procedures.iter().map(|p| p.name.as_str()).collect();
    let mut procedures = Vec::new();
    for proc_def in &source.procedures {
        let mut builder = CfgBuilder::new(&vars);
        let entry = builder.graph.add_node();
        let exit = builder.lower_block(&proc_def.body, entry)?;
        // Validate call targets.
        for label in &builder.labels {
            if let EdgeLabel::Call(callee) = label {
                if !names.contains(callee.as_str()) {
                    return Err(CompileError::UndefinedProcedure(callee.clone()));
                }
            }
        }
        procedures.push(Procedure {
            name: proc_def.name.clone(),
            graph: builder.graph,
            entry,
            exit,
            labels: builder.labels,
        });
    }
    Ok(Program {
        vars,
        procedures,
        entry: source.entry_name().to_string(),
    })
}

fn collect_vars(stmts: &[Stmt], vars: &mut BTreeSet<Symbol>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(x, e) => {
                vars.insert(Symbol::intern(x));
                if let Expr::Linear(t) = e {
                    vars.extend(t.vars().copied());
                }
            }
            Stmt::Assume(f) => vars.extend(f.free_vars()),
            Stmt::If(c, t, e) => {
                if let Cond::Formula(f) = c {
                    vars.extend(f.free_vars());
                }
                collect_vars(t, vars);
                collect_vars(e, vars);
            }
            Stmt::While(c, body) => {
                if let Cond::Formula(f) = c {
                    vars.extend(f.free_vars());
                }
                collect_vars(body, vars);
            }
            Stmt::Halt | Stmt::Skip | Stmt::Call(_) => {}
        }
    }
}

struct CfgBuilder<'a> {
    graph: DiGraph,
    labels: Vec<EdgeLabel>,
    vars: &'a [Symbol],
}

impl<'a> CfgBuilder<'a> {
    fn new(vars: &'a [Symbol]) -> CfgBuilder<'a> {
        CfgBuilder { graph: DiGraph::new(), labels: Vec::new(), vars }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, label: EdgeLabel) {
        let id = self.graph.add_edge(from, to);
        debug_assert_eq!(id, self.labels.len());
        self.labels.push(label);
    }

    fn transition_edge(&mut self, from: NodeId, to: NodeId, tf: TransitionFormula) {
        self.add_edge(from, to, EdgeLabel::Transition(tf));
    }

    fn skip_edge(&mut self, from: NodeId, to: NodeId) {
        let identity = TransitionFormula::identity(self.vars);
        self.transition_edge(from, to, identity);
    }

    fn lower_block(&mut self, stmts: &[Stmt], mut current: NodeId) -> Result<NodeId, CompileError> {
        for stmt in stmts {
            current = self.lower_stmt(stmt, current)?;
        }
        Ok(current)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, current: NodeId) -> Result<NodeId, CompileError> {
        match stmt {
            Stmt::Skip => Ok(current),
            Stmt::Assign(x, expr) => {
                let next = self.graph.add_node();
                let sym = Symbol::intern(x);
                let tf = match expr {
                    Expr::Linear(t) => TransitionFormula::assign(sym, t.clone(), self.vars),
                    Expr::Nondet => TransitionFormula::havoc(sym, self.vars),
                };
                self.transition_edge(current, next, tf);
                Ok(next)
            }
            Stmt::Assume(f) => {
                let next = self.graph.add_node();
                self.transition_edge(
                    current,
                    next,
                    TransitionFormula::assume(f.clone(), self.vars),
                );
                Ok(next)
            }
            Stmt::Halt => {
                // A sink with no outgoing edges: the program stops here.
                let sink = self.graph.add_node();
                self.skip_edge(current, sink);
                // Statements after `halt` are unreachable; give them a fresh
                // start node that nothing points to.
                Ok(self.graph.add_node())
            }
            Stmt::Call(name) => {
                let next = self.graph.add_node();
                self.add_edge(current, next, EdgeLabel::Call(name.clone()));
                Ok(next)
            }
            Stmt::If(cond, then_branch, else_branch) => {
                let then_start = self.graph.add_node();
                let else_start = self.graph.add_node();
                self.transition_edge(
                    current,
                    then_start,
                    TransitionFormula::assume(cond.assumed(), self.vars),
                );
                self.transition_edge(
                    current,
                    else_start,
                    TransitionFormula::assume(cond.refuted(), self.vars),
                );
                let then_end = self.lower_block(then_branch, then_start)?;
                let else_end = self.lower_block(else_branch, else_start)?;
                let join = self.graph.add_node();
                self.skip_edge(then_end, join);
                self.skip_edge(else_end, join);
                Ok(join)
            }
            Stmt::While(cond, body) => {
                let head = self.graph.add_node();
                self.skip_edge(current, head);
                let body_start = self.graph.add_node();
                self.transition_edge(
                    head,
                    body_start,
                    TransitionFormula::assume(cond.assumed(), self.vars),
                );
                let body_end = self.lower_block(body, body_start)?;
                self.skip_edge(body_end, head);
                let after = self.graph.add_node();
                self.transition_edge(
                    head,
                    after,
                    TransitionFormula::assume(cond.refuted(), self.vars),
                );
                Ok(after)
            }
        }
    }
}

/// Convenience: builds an assumption formula for use in tests.
pub fn assume_formula(f: Formula, vars: &[Symbol]) -> TransitionFormula {
    TransitionFormula::assume(f, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::Valuation;
    use compact_smt::Solver;

    #[test]
    fn lower_straight_line() {
        let p = compile("proc main() { x := 1; y := x + 1; }").unwrap();
        let main = p.entry_procedure();
        assert_eq!(main.graph.num_edges(), 2);
        assert_eq!(main.graph.predecessors(main.entry).count(), 0);
        // Composing the two edges relates x=*, y=* to x=1, y=2.
        let solver = Solver::new();
        let t1 = main.label(0).as_transition().unwrap();
        let t2 = main.label(1).as_transition().unwrap();
        let both = t1.compose(t2);
        let pre: Valuation = [
            (Symbol::intern("x"), 7.into()),
            (Symbol::intern("y"), 7.into()),
        ]
        .into_iter()
        .collect();
        let post: Valuation = [
            (Symbol::intern("x"), 1.into()),
            (Symbol::intern("y"), 2.into()),
        ]
        .into_iter()
        .collect();
        assert!(both.accepts(&solver, &pre, &post));
    }

    #[test]
    fn lower_while_loop_shape() {
        let p = compile("proc main() { while (x > 0) { x := x - 1; } }").unwrap();
        let main = p.entry_procedure();
        // Entry has no incoming edges even though the program starts with a
        // loop.
        assert_eq!(main.graph.predecessors(main.entry).count(), 0);
        // There is a cycle (the loop) reachable from the entry.
        let reach = main.graph.reachable_from(main.entry);
        assert!(reach.len() >= 3);
        // The exit is reachable.
        assert!(reach.contains(&main.exit));
    }

    #[test]
    fn lower_if_and_halt() {
        let p = compile(
            "proc main() { if (x < 0) { halt; } else { x := x - 1; } y := 0; }",
        )
        .unwrap();
        let main = p.entry_procedure();
        assert!(main.graph.num_edges() >= 5);
        // No call edges.
        assert!(!main.has_calls());
    }

    #[test]
    fn lower_calls() {
        let p = compile(
            "proc main() { call helper(); } proc helper() { x := 0; }",
        )
        .unwrap();
        assert!(p.has_calls());
        let main = p.entry_procedure();
        assert_eq!(main.callees(), ["helper".to_string()].into_iter().collect());
        assert!(p.procedure("helper").is_some());
    }

    #[test]
    fn undefined_procedure_is_rejected() {
        let err = compile("proc main() { call nothere(); }").unwrap_err();
        assert_eq!(
            err,
            CompileError::UndefinedProcedure("nothere".to_string())
        );
    }

    #[test]
    fn variables_are_collected_globally() {
        let p = compile(
            "proc main() { a := b + 1; call aux(); } proc aux() { c := a; }",
        )
        .unwrap();
        let names: Vec<String> = p.vars.iter().map(|v| v.name()).collect();
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"b".to_string()));
        assert!(names.contains(&"c".to_string()));
    }

    #[test]
    fn nondet_condition_takes_both_branches() {
        let p = compile("proc main() { if (*) { x := 1; } else { x := 2; } }").unwrap();
        let main = p.entry_procedure();
        let solver = Solver::new();
        // Both branch assumptions are satisfiable from any state.
        let branch_edges: Vec<&TransitionFormula> = main
            .graph
            .successors(main.entry)
            .map(|(e, _)| main.label(e).as_transition().unwrap())
            .collect();
        assert_eq!(branch_edges.len(), 2);
        for t in branch_edges {
            assert!(!t.is_empty(&solver));
        }
    }
}
