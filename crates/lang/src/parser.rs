//! Lexer and parser for the mini imperative language.

use crate::ast::{Cond, Expr, ProcDef, SourceProgram, Stmt};
use compact_arith::Int;
use compact_logic::{Formula, Symbol, Term};
use std::fmt;

/// Error produced when parsing a program fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Line number (1-based) where the problem was detected.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a program of the mini language.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// use compact_lang::parse_source;
/// let program = parse_source("proc main() { x := 0; while (x < 10) { x := x + 1; } }").unwrap();
/// assert_eq!(program.procedures.len(), 1);
/// ```
pub fn parse_source(input: &str) -> Result<SourceProgram, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut procedures = Vec::new();
    while !parser.at_end() {
        procedures.push(parser.procedure()?);
    }
    if procedures.is_empty() {
        return Err(ParseError { message: "program has no procedures".into(), line: 1 });
    }
    Ok(SourceProgram { procedures })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(Int),
    Assign,   // :=
    Semi,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Plus,
    Minus,
    Star,
    AndAnd,
    OrOr,
    Not,
    Le,
    Lt,
    Ge,
    Gt,
    EqEq,
    Neq,
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |(_, l)| *l)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), line: self.line() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}", what)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(name),
            _ => Err(self.error("expected identifier")),
        }
    }

    fn procedure(&mut self) -> Result<ProcDef, ParseError> {
        if !self.eat_keyword("proc") {
            return Err(self.error("expected `proc`"));
        }
        let name = self.expect_ident()?;
        self.expect(Tok::LParen, "`(`")?;
        self.expect(Tok::RParen, "`)`")?;
        let body = self.block()?;
        Ok(ProcDef { name, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.error("unexpected end of input in block"));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_keyword("while") {
            self.expect(Tok::LParen, "`(`")?;
            let cond = self.condition()?;
            self.expect(Tok::RParen, "`)`")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_keyword("if") {
            self.expect(Tok::LParen, "`(`")?;
            let cond = self.condition()?;
            self.expect(Tok::RParen, "`)`")?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_keyword("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then_branch, else_branch));
        }
        if self.eat_keyword("assume") {
            self.expect(Tok::LParen, "`(`")?;
            let cond = self.formula()?;
            self.expect(Tok::RParen, "`)`")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Assume(cond));
        }
        if self.eat_keyword("halt") {
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Halt);
        }
        if self.eat_keyword("skip") {
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Skip);
        }
        if self.eat_keyword("call") {
            let name = self.expect_ident()?;
            self.expect(Tok::LParen, "`(`")?;
            self.expect(Tok::RParen, "`)`")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Call(name));
        }
        if self.eat_keyword("havoc") {
            let name = self.expect_ident()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Assign(name, Expr::Nondet));
        }
        // Assignment.
        let name = self.expect_ident()?;
        self.expect(Tok::Assign, "`:=`")?;
        let expr = self.expression()?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(Stmt::Assign(name, expr))
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("nondet") {
            self.expect(Tok::LParen, "`(`")?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(Expr::Nondet);
        }
        if self.peek() == Some(&Tok::Star) {
            self.bump();
            return Ok(Expr::Nondet);
        }
        Ok(Expr::Linear(self.term()?))
    }

    fn condition(&mut self) -> Result<Cond, ParseError> {
        if self.peek() == Some(&Tok::Star) {
            self.bump();
            return Ok(Cond::Nondet);
        }
        Ok(Cond::Formula(self.formula()?))
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and_formula()?];
        while self.eat(&Tok::OrOr) {
            parts.push(self.and_formula()?);
        }
        Ok(Formula::or(parts))
    }

    fn and_formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary_formula()?];
        while self.eat(&Tok::AndAnd) {
            parts.push(self.unary_formula()?);
        }
        Ok(Formula::and(parts))
    }

    fn unary_formula(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Formula::not(self.unary_formula()?))
            }
            Some(Tok::Ident(name)) if name == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::Ident(name)) if name == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::LParen) => {
                // Try a parenthesized formula, falling back to a term
                // comparison on failure.
                let save = self.pos;
                self.bump();
                if let Ok(f) = self.formula() {
                    if self.eat(&Tok::RParen)
                        && !matches!(
                            self.peek(),
                            Some(Tok::Le | Tok::Lt | Tok::Ge | Tok::Gt | Tok::EqEq | Tok::Neq)
                        )
                    {
                        return Ok(f);
                    }
                }
                self.pos = save;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.term()?;
        let op = self
            .bump()
            .ok_or_else(|| self.error("expected comparison operator"))?;
        let rhs = self.term()?;
        match op {
            Tok::Le => Ok(Formula::le(lhs, rhs)),
            Tok::Lt => Ok(Formula::lt(lhs, rhs)),
            Tok::Ge => Ok(Formula::ge(lhs, rhs)),
            Tok::Gt => Ok(Formula::gt(lhs, rhs)),
            Tok::EqEq => Ok(Formula::eq(lhs, rhs)),
            Tok::Neq => Ok(Formula::neq(lhs, rhs)),
            _ => Err(self.error("expected comparison operator")),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.product()?;
        loop {
            if self.eat(&Tok::Plus) {
                acc = acc + self.product()?;
            } else if self.eat(&Tok::Minus) {
                acc = acc - self.product()?;
            } else {
                return Ok(acc);
            }
        }
    }

    fn product(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.factor()?;
        while self.eat(&Tok::Star) {
            let rhs = self.factor()?;
            acc = if acc.is_constant() {
                rhs.scale(acc.constant_part().clone())
            } else if rhs.is_constant() {
                acc.scale(rhs.constant_part().clone())
            } else {
                return Err(self.error("non-linear multiplication"));
            };
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Term::constant(n)),
            Some(Tok::Ident(name)) => Ok(Term::var(Symbol::intern(&name))),
            Some(Tok::Minus) => Ok(-self.factor()?),
            Some(Tok::LParen) => {
                let t = self.term()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.error("expected integer expression")),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: Int = input[i..j]
                    .parse()
                    .map_err(|_| ParseError { message: "bad integer literal".into(), line })?;
                toks.push((Tok::Int(n), line));
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                toks.push((Tok::Ident(input[i..j].to_string()), line));
                i = j;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                toks.push((Tok::Assign, line));
                i += 2;
            }
            ';' => {
                toks.push((Tok::Semi, line));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, line));
                i += 1;
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, line));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, line));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, line));
                i += 1;
            }
            '&' if i + 1 < bytes.len() && bytes[i + 1] == b'&' => {
                toks.push((Tok::AndAnd, line));
                i += 2;
            }
            '|' if i + 1 < bytes.len() && bytes[i + 1] == b'|' => {
                toks.push((Tok::OrOr, line));
                i += 2;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Neq, line));
                    i += 2;
                } else {
                    toks.push((Tok::Not, line));
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Le, line));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, line));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Ge, line));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, line));
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::EqEq, line));
                    i += 2;
                } else {
                    toks.push((Tok::EqEq, line));
                    i += 1;
                }
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", other),
                    line,
                });
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure1_program() {
        let src = r#"
            // The program of Figure 1.
            proc main() {
                step := 8;
                while (true) {
                    m := 0;
                    while (m < step) {
                        if (n < 0) { halt; } else { m := m + 1; n := n - 1; }
                    }
                }
            }
        "#;
        let p = parse_source(src).unwrap();
        assert_eq!(p.procedures.len(), 1);
        assert_eq!(p.entry_name(), "main");
        assert_eq!(p.procedures[0].body.len(), 2);
        match &p.procedures[0].body[1] {
            Stmt::While(Cond::Formula(f), body) => {
                assert!(f.is_true());
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected while, got {:?}", other),
        }
    }

    #[test]
    fn parse_procedures_and_calls() {
        let src = r#"
            proc main() { g := n; call fib(); }
            proc fib() {
                if (g <= 1) { r := 1; } else {
                    g := g - 1;
                    call fib();
                    t := r;
                    g := g - 1;
                    call fib();
                    r := r + t;
                }
            }
        "#;
        let p = parse_source(src).unwrap();
        assert_eq!(p.procedures.len(), 2);
        assert!(p.procedure("fib").is_some());
        assert!(p.procedure("nope").is_none());
    }

    #[test]
    fn parse_nondet_and_havoc() {
        let src = r#"
            proc main() {
                havoc x;
                y := nondet();
                if (*) { z := 1; }
                while (x > 0 && y != 3) { x := x - 1; }
            }
        "#;
        let p = parse_source(src).unwrap();
        let body = &p.procedures[0].body;
        assert_eq!(body[0], Stmt::Assign("x".into(), Expr::Nondet));
        assert_eq!(body[1], Stmt::Assign("y".into(), Expr::Nondet));
        match &body[2] {
            Stmt::If(Cond::Nondet, t, e) => {
                assert_eq!(t.len(), 1);
                assert!(e.is_empty());
            }
            other => panic!("expected nondet if, got {:?}", other),
        }
    }

    #[test]
    fn parse_assume_skip() {
        let src = "proc main() { assume(x >= 0); skip; }";
        let p = parse_source(src).unwrap();
        assert_eq!(p.procedures[0].body.len(), 2);
    }

    #[test]
    fn reject_syntax_errors() {
        assert!(parse_source("").is_err());
        assert!(parse_source("proc main() { x := ; }").is_err());
        assert!(parse_source("proc main() { x = 3; }").is_err());
        assert!(parse_source("proc main() { while x < 3 { } }").is_err());
        assert!(parse_source("main() { }").is_err());
        let err = parse_source("proc main() {\n x := @;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
