//! Linear integer arithmetic formulas.

use crate::{Symbol, Term, Valuation};
use compact_arith::Int;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An atomic LIA constraint, kept in a normalized form where the right-hand
/// side is always zero.
///
/// Strict inequalities over the integers are normalized away at construction
/// (`t < 0` becomes `t + 1 <= 0`), so only the variants below remain.
/// Divisibility atoms appear during Cooper quantifier elimination.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// `term <= 0`
    Le(Term),
    /// `term = 0`
    Eq(Term),
    /// `term ≠ 0`
    Neq(Term),
    /// `n` divides `term` (with `n > 0`)
    Divides(Int, Term),
    /// `n` does not divide `term` (with `n > 0`)
    NotDivides(Int, Term),
}

impl Atom {
    /// The negation of this atom, as an atom.
    pub fn negate(&self) -> Atom {
        match self {
            // ¬(t <= 0)  ⇔  t >= 1  ⇔  1 - t <= 0
            Atom::Le(t) => Atom::Le(Term::constant(1) - t.clone()),
            Atom::Eq(t) => Atom::Neq(t.clone()),
            Atom::Neq(t) => Atom::Eq(t.clone()),
            Atom::Divides(n, t) => Atom::NotDivides(n.clone(), t.clone()),
            Atom::NotDivides(n, t) => Atom::Divides(n.clone(), t.clone()),
        }
    }

    /// The term of the atom.
    pub fn term(&self) -> &Term {
        match self {
            Atom::Le(t) | Atom::Eq(t) | Atom::Neq(t) | Atom::Divides(_, t) | Atom::NotDivides(_, t) => t,
        }
    }

    /// Applies a function to the term of the atom.
    pub fn map_term(&self, f: impl FnOnce(&Term) -> Term) -> Atom {
        match self {
            Atom::Le(t) => Atom::Le(f(t)),
            Atom::Eq(t) => Atom::Eq(f(t)),
            Atom::Neq(t) => Atom::Neq(f(t)),
            Atom::Divides(n, t) => Atom::Divides(n.clone(), f(t)),
            Atom::NotDivides(n, t) => Atom::NotDivides(n.clone(), f(t)),
        }
    }

    /// Evaluates the atom under a (total) valuation.
    pub fn eval(&self, v: &Valuation) -> Option<bool> {
        match self {
            Atom::Le(t) => Some(!t.eval(v)?.is_positive()),
            Atom::Eq(t) => Some(t.eval(v)?.is_zero()),
            Atom::Neq(t) => Some(!t.eval(v)?.is_zero()),
            Atom::Divides(n, t) => Some(t.eval(v)?.rem_euclid(n).is_zero()),
            Atom::NotDivides(n, t) => Some(!t.eval(v)?.rem_euclid(n).is_zero()),
        }
    }

    /// If the atom has a constant truth value, return it.
    pub fn constant_value(&self) -> Option<bool> {
        if !self.term().is_constant() {
            return None;
        }
        self.eval(&Valuation::new())
    }

    /// The variables occurring in the atom.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        self.term().vars().copied().collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Le(t) => write!(f, "{} <= 0", t),
            Atom::Eq(t) => write!(f, "{} = 0", t),
            Atom::Neq(t) => write!(f, "{} != 0", t),
            Atom::Divides(n, t) => write!(f, "{} | {}", n, t),
            Atom::NotDivides(n, t) => write!(f, "!({} | {})", n, t),
        }
    }
}

/// A formula of linear integer arithmetic (§3.2 of the paper).
///
/// Use the associated constructor functions ([`Formula::le`],
/// [`Formula::and`], [`Formula::exists`], …) rather than building variants
/// directly: the constructors perform light normalization (flattening,
/// constant folding, unit absorption) that keeps formulas small.
///
/// # Examples
///
/// ```
/// use compact_logic::{Formula, Term, Symbol};
/// let x = Term::var(Symbol::intern("x"));
/// let f = Formula::and(vec![
///     Formula::le(Term::constant(0), x.clone()),
///     Formula::lt(x, Term::constant(10)),
/// ]);
/// assert!(f.is_quantifier_free());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The formula `true`.
    True,
    /// The formula `false`.
    False,
    /// An atomic constraint.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification.
    Exists(Vec<Symbol>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<Symbol>, Box<Formula>),
}

impl Formula {
    /// The formula `true`.
    pub fn tru() -> Formula {
        Formula::True
    }

    /// The formula `false`.
    pub fn fls() -> Formula {
        Formula::False
    }

    /// Builds an atom, constant-folding if the term is constant.
    pub fn atom(atom: Atom) -> Formula {
        match atom.constant_value() {
            Some(true) => Formula::True,
            Some(false) => Formula::False,
            None => Formula::Atom(atom),
        }
    }

    /// `t1 <= t2`
    pub fn le(t1: impl Into<Term>, t2: impl Into<Term>) -> Formula {
        Formula::atom(Atom::Le(t1.into() - t2.into()))
    }

    /// `t1 < t2`
    pub fn lt(t1: impl Into<Term>, t2: impl Into<Term>) -> Formula {
        Formula::atom(Atom::Le(t1.into() - t2.into() + 1))
    }

    /// `t1 >= t2`
    pub fn ge(t1: impl Into<Term>, t2: impl Into<Term>) -> Formula {
        Formula::le(t2, t1)
    }

    /// `t1 > t2`
    pub fn gt(t1: impl Into<Term>, t2: impl Into<Term>) -> Formula {
        Formula::lt(t2, t1)
    }

    /// `t1 = t2`
    pub fn eq(t1: impl Into<Term>, t2: impl Into<Term>) -> Formula {
        Formula::atom(Atom::Eq(t1.into() - t2.into()))
    }

    /// `t1 ≠ t2`
    pub fn neq(t1: impl Into<Term>, t2: impl Into<Term>) -> Formula {
        Formula::atom(Atom::Neq(t1.into() - t2.into()))
    }

    /// `n | t` (divisibility).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not positive.
    pub fn divides(n: impl Into<Int>, t: impl Into<Term>) -> Formula {
        let n = n.into();
        assert!(n.is_positive(), "divisibility modulus must be positive");
        if n.is_one() {
            return Formula::True;
        }
        Formula::atom(Atom::Divides(n, t.into()))
    }

    /// n-ary conjunction with unit/zero absorption and flattening.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat: Vec<Formula> = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        // Deduplicate while preserving order.
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for p in flat {
            if !seen.contains(&p) {
                seen.push(p.clone());
                out.push(p);
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.into_iter().next().expect("length checked"),
            _ => Formula::And(out),
        }
    }

    /// n-ary disjunction with unit/zero absorption and flattening.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat: Vec<Formula> = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for p in flat {
            if !seen.contains(&p) {
                seen.push(p.clone());
                out.push(p);
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.into_iter().next().expect("length checked"),
            _ => Formula::Or(out),
        }
    }

    /// Negation (with double-negation and constant elimination).
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            Formula::Atom(a) => Formula::atom(a.negate()),
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Implication `p ⇒ q`.
    pub fn implies(p: Formula, q: Formula) -> Formula {
        Formula::or(vec![Formula::not(p), q])
    }

    /// Bi-implication `p ⇔ q`.
    pub fn iff(p: Formula, q: Formula) -> Formula {
        Formula::and(vec![
            Formula::implies(p.clone(), q.clone()),
            Formula::implies(q, p),
        ])
    }

    /// Existential quantification (dropping variables that do not occur).
    pub fn exists(vars: Vec<Symbol>, body: Formula) -> Formula {
        let free = body.free_vars();
        let vars: Vec<Symbol> = vars.into_iter().filter(|v| free.contains(v)).collect();
        if vars.is_empty() {
            return body;
        }
        match body {
            Formula::Exists(mut inner_vars, inner_body) => {
                let mut all = vars;
                all.append(&mut inner_vars);
                Formula::Exists(all, inner_body)
            }
            other => Formula::Exists(vars, Box::new(other)),
        }
    }

    /// Universal quantification (dropping variables that do not occur).
    pub fn forall(vars: Vec<Symbol>, body: Formula) -> Formula {
        let free = body.free_vars();
        let vars: Vec<Symbol> = vars.into_iter().filter(|v| free.contains(v)).collect();
        if vars.is_empty() {
            return body;
        }
        match body {
            Formula::Forall(mut inner_vars, inner_body) => {
                let mut all = vars;
                all.append(&mut inner_vars);
                Formula::Forall(all, inner_body)
            }
            other => Formula::Forall(vars, Box::new(other)),
        }
    }

    /// Returns the conjuncts of a conjunction (or a singleton for other
    /// formulas, and nothing for `true`).
    pub fn conjuncts(&self) -> Vec<&Formula> {
        match self {
            Formula::True => Vec::new(),
            Formula::And(parts) => parts.iter().collect(),
            other => vec![other],
        }
    }

    /// Returns the disjuncts of a disjunction (or a singleton for other
    /// formulas, and nothing for `false`).
    pub fn disjuncts(&self) -> Vec<&Formula> {
        match self {
            Formula::False => Vec::new(),
            Formula::Or(parts) => parts.iter().collect(),
            other => vec![other],
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<Symbol>, out: &mut BTreeSet<Symbol>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for v in a.term().vars() {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.collect_free_vars(bound, out);
                }
            }
            Formula::Not(inner) => inner.collect_free_vars(bound, out),
            Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                let n = bound.len();
                bound.extend(vars.iter().copied());
                body.collect_free_vars(bound, out);
                bound.truncate(n);
            }
        }
    }

    /// Returns `true` if the formula contains no quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::And(parts) | Formula::Or(parts) => {
                parts.iter().all(Formula::is_quantifier_free)
            }
            Formula::Not(inner) => inner.is_quantifier_free(),
            Formula::Exists(..) | Formula::Forall(..) => false,
        }
    }

    /// The number of nodes in the formula (a rough size measure).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::And(parts) | Formula::Or(parts) => {
                1 + parts.iter().map(Formula::size).sum::<usize>()
            }
            Formula::Not(inner) => 1 + inner.size(),
            Formula::Exists(_, body) | Formula::Forall(_, body) => 1 + body.size(),
        }
    }

    /// Collects all atoms of the formula (under quantifiers too).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.push(a),
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.collect_atoms(out);
                }
            }
            Formula::Not(inner) => inner.collect_atoms(out),
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.collect_atoms(out),
        }
    }

    /// Simultaneous, capture-avoiding substitution of variables by terms.
    pub fn substitute(&self, map: &BTreeMap<Symbol, Term>) -> Formula {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::atom(a.map_term(|t| t.substitute(map))),
            Formula::And(parts) => {
                Formula::and(parts.iter().map(|p| p.substitute(map)).collect())
            }
            Formula::Or(parts) => {
                Formula::or(parts.iter().map(|p| p.substitute(map)).collect())
            }
            Formula::Not(inner) => Formula::not(inner.substitute(map)),
            Formula::Exists(vars, body) => {
                let (vars, body, map) = Self::avoid_capture(vars, body, map);
                Formula::exists(vars, body.substitute(&map))
            }
            Formula::Forall(vars, body) => {
                let (vars, body, map) = Self::avoid_capture(vars, body, map);
                Formula::forall(vars, body.substitute(&map))
            }
        }
    }

    /// Prepares a quantified body for substitution: drops mappings of bound
    /// variables and renames bound variables that would capture free
    /// variables of the substituted terms.
    fn avoid_capture(
        vars: &[Symbol],
        body: &Formula,
        map: &BTreeMap<Symbol, Term>,
    ) -> (Vec<Symbol>, Formula, BTreeMap<Symbol, Term>) {
        // Restrict the substitution to variables that are not bound here.
        let mut restricted: BTreeMap<Symbol, Term> = map
            .iter()
            .filter(|(k, _)| !vars.contains(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        // Find bound variables that occur free in a substituted term.
        let mut term_vars: BTreeSet<Symbol> = BTreeSet::new();
        for t in restricted.values() {
            term_vars.extend(t.vars().copied());
        }
        let mut new_vars = Vec::with_capacity(vars.len());
        let mut body = body.clone();
        for v in vars {
            if term_vars.contains(v) {
                let fresh = Symbol::fresh(&v.name());
                let mut rename = BTreeMap::new();
                rename.insert(*v, Term::var(fresh));
                body = body.substitute(&rename);
                new_vars.push(fresh);
            } else {
                new_vars.push(*v);
            }
        }
        // Renaming may have introduced occurrences of fresh variables; they
        // cannot collide with the substitution domain, so `restricted` is
        // still correct.
        restricted.retain(|k, _| !new_vars.contains(k));
        (new_vars, body, restricted)
    }

    /// Renames free variables according to a map.
    pub fn rename(&self, map: &BTreeMap<Symbol, Symbol>) -> Formula {
        let term_map: BTreeMap<Symbol, Term> =
            map.iter().map(|(k, v)| (*k, Term::var(*v))).collect();
        self.substitute(&term_map)
    }

    /// Evaluates a quantifier-free formula under a valuation.
    ///
    /// Returns `None` if the formula contains quantifiers or mentions an
    /// unassigned variable.
    pub fn eval(&self, v: &Valuation) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Atom(a) => a.eval(v),
            Formula::And(parts) => {
                for p in parts {
                    if !p.eval(v)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Formula::Or(parts) => {
                for p in parts {
                    if p.eval(v)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            Formula::Not(inner) => Some(!inner.eval(v)?),
            Formula::Exists(..) | Formula::Forall(..) => None,
        }
    }

    /// Converts the formula to negation normal form: negations occur only
    /// inside atoms, and `Not` nodes are eliminated.
    pub fn nnf(&self) -> Formula {
        self.nnf_aux(false)
    }

    fn nnf_aux(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Atom(a) => {
                if negate {
                    Formula::atom(a.negate())
                } else {
                    Formula::Atom(a.clone())
                }
            }
            Formula::And(parts) => {
                let converted: Vec<Formula> = parts.iter().map(|p| p.nnf_aux(negate)).collect();
                if negate {
                    Formula::or(converted)
                } else {
                    Formula::and(converted)
                }
            }
            Formula::Or(parts) => {
                let converted: Vec<Formula> = parts.iter().map(|p| p.nnf_aux(negate)).collect();
                if negate {
                    Formula::and(converted)
                } else {
                    Formula::or(converted)
                }
            }
            Formula::Not(inner) => inner.nnf_aux(!negate),
            Formula::Exists(vars, body) => {
                let body = body.nnf_aux(negate);
                if negate {
                    Formula::forall(vars.clone(), body)
                } else {
                    Formula::exists(vars.clone(), body)
                }
            }
            Formula::Forall(vars, body) => {
                let body = body.nnf_aux(negate);
                if negate {
                    Formula::exists(vars.clone(), body)
                } else {
                    Formula::forall(vars.clone(), body)
                }
            }
        }
    }

    /// Recursively re-applies the smart constructors, which flattens nested
    /// connectives, folds constant atoms and removes duplicates.
    pub fn simplify(&self) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::atom(a.clone()),
            Formula::And(parts) => Formula::and(parts.iter().map(Formula::simplify).collect()),
            Formula::Or(parts) => Formula::or(parts.iter().map(Formula::simplify).collect()),
            Formula::Not(inner) => Formula::not(inner.simplify()),
            Formula::Exists(vars, body) => Formula::exists(vars.clone(), body.simplify()),
            Formula::Forall(vars, body) => Formula::forall(vars.clone(), body.simplify()),
        }
    }

    /// Returns `true` if the formula is syntactically `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Formula::True)
    }

    /// Returns `true` if the formula is syntactically `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Formula::False)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{}", a),
            Formula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{}", p)?;
                }
                write!(f, ")")
            }
            Formula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{}", p)?;
                }
                write!(f, ")")
            }
            Formula::Not(inner) => write!(f, "!({})", inner),
            Formula::Exists(vars, body) => {
                write!(f, "(exists ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, ". {})", body)
            }
            Formula::Forall(vars, body) => {
                write!(f, "(forall ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, ". {})", body)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn var(s: &str) -> Term {
        Term::var(sym(s))
    }

    #[test]
    fn constructors_fold_constants() {
        assert!(Formula::le(Term::constant(1), Term::constant(2)).is_true());
        assert!(Formula::lt(Term::constant(2), Term::constant(2)).is_false());
        assert!(Formula::eq(Term::constant(3), Term::constant(3)).is_true());
        assert!(Formula::divides(3, Term::constant(9)).is_true());
        assert!(Formula::divides(3, Term::constant(10)).is_false());
        assert!(Formula::divides(1, var("x")).is_true());
    }

    #[test]
    fn and_or_absorption() {
        let a = Formula::le(var("x"), Term::constant(0));
        assert_eq!(Formula::and(vec![Formula::True, a.clone()]), a);
        assert!(Formula::and(vec![Formula::False, a.clone()]).is_false());
        assert_eq!(Formula::or(vec![Formula::False, a.clone()]), a);
        assert!(Formula::or(vec![Formula::True, a.clone()]).is_true());
        assert!(Formula::and(vec![]).is_true());
        assert!(Formula::or(vec![]).is_false());
        // Flattening and dedup.
        let nested = Formula::and(vec![
            Formula::and(vec![a.clone(), a.clone()]),
            a.clone(),
        ]);
        assert_eq!(nested, a);
    }

    #[test]
    fn negation_of_atoms() {
        // !(x <= 0) is x >= 1
        let f = Formula::not(Formula::le(var("x"), Term::constant(0)));
        let mut v = Valuation::new();
        v.set(sym("x"), 1.into());
        assert_eq!(f.eval(&v), Some(true));
        v.set(sym("x"), 0.into());
        assert_eq!(f.eval(&v), Some(false));
        // Double negation cancels.
        let g = Formula::not(Formula::not(f.clone()));
        assert_eq!(g, f);
    }

    #[test]
    fn free_vars_and_quantifiers() {
        let body = Formula::eq(var("x"), var("y"));
        let f = Formula::exists(vec![sym("x")], body.clone());
        assert_eq!(f.free_vars(), [sym("y")].into_iter().collect());
        assert!(!f.is_quantifier_free());
        assert!(body.is_quantifier_free());
        // Quantifying a variable that does not occur is a no-op.
        let g = Formula::exists(vec![sym("z")], body.clone());
        assert_eq!(g, body);
        // Nested existentials merge.
        let h = Formula::exists(vec![sym("y")], f.clone());
        match h {
            Formula::Exists(vars, _) => assert_eq!(vars.len(), 2),
            other => panic!("expected exists, got {}", other),
        }
    }

    #[test]
    fn substitution_capture_avoidance() {
        // (exists x. x <= y)[y -> x] must not capture x.
        let f = Formula::exists(vec![sym("x")], Formula::le(var("x"), var("y")));
        let mut map = BTreeMap::new();
        map.insert(sym("y"), var("x"));
        let g = f.substitute(&map);
        // The substituted formula says "exists fresh. fresh <= x", which is
        // satisfiable for every x; crucially the free variable must be x and
        // the bound variable must NOT be x.
        assert_eq!(g.free_vars(), [sym("x")].into_iter().collect());
        match g {
            Formula::Exists(vars, body) => {
                assert_eq!(vars.len(), 1);
                assert_ne!(vars[0], sym("x"));
                assert!(body.free_vars().contains(&sym("x")));
            }
            other => panic!("expected exists, got {}", other),
        }
    }

    #[test]
    fn evaluation() {
        let f = Formula::and(vec![
            Formula::le(Term::constant(0), var("x")),
            Formula::lt(var("x"), Term::constant(10)),
            Formula::divides(2, var("x")),
        ]);
        let mut v = Valuation::new();
        v.set(sym("x"), 4.into());
        assert_eq!(f.eval(&v), Some(true));
        v.set(sym("x"), 5.into());
        assert_eq!(f.eval(&v), Some(false));
        v.set(sym("x"), (-2).into());
        assert_eq!(f.eval(&v), Some(false));
    }

    #[test]
    fn nnf_pushes_negations() {
        let f = Formula::not(Formula::and(vec![
            Formula::le(var("x"), Term::constant(0)),
            Formula::exists(vec![sym("y")], Formula::eq(var("y"), var("x"))),
        ]));
        let g = f.nnf();
        // NNF of a negated conjunction is a disjunction.
        match &g {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                // The negated existential becomes a universal.
                assert!(parts.iter().any(|p| matches!(p, Formula::Forall(..))));
            }
            other => panic!("expected or, got {}", other),
        }
        // NNF has no Not nodes.
        fn no_nots(f: &Formula) -> bool {
            match f {
                Formula::Not(_) => false,
                Formula::And(ps) | Formula::Or(ps) => ps.iter().all(no_nots),
                Formula::Exists(_, b) | Formula::Forall(_, b) => no_nots(b),
                _ => true,
            }
        }
        assert!(no_nots(&g));
    }

    #[test]
    fn nnf_preserves_semantics_on_ground_formulas() {
        let cases = vec![
            Formula::not(Formula::or(vec![
                Formula::le(var("a"), Term::constant(3)),
                Formula::eq(var("b"), Term::constant(0)),
            ])),
            Formula::implies(
                Formula::lt(var("a"), var("b")),
                Formula::neq(var("a"), var("b")),
            ),
        ];
        for f in cases {
            let g = f.nnf();
            for a in -2i64..3 {
                for b in -2i64..3 {
                    let mut v = Valuation::new();
                    v.set(sym("a"), a.into());
                    v.set(sym("b"), b.into());
                    assert_eq!(f.eval(&v), g.eval(&v), "mismatch on {} vs {}", f, g);
                }
            }
        }
    }

    #[test]
    fn display_roundtrip_sanity() {
        let f = Formula::and(vec![
            Formula::le(var("x"), var("y")),
            Formula::or(vec![
                Formula::eq(var("z"), Term::constant(1)),
                Formula::not(Formula::divides(3, var("x"))),
            ]),
        ]);
        let s = f.to_string();
        assert!(s.contains("&&"));
        assert!(s.contains("||"));
    }

    #[test]
    fn size_and_atoms() {
        let f = Formula::and(vec![
            Formula::le(var("x"), Term::constant(0)),
            Formula::ge(var("y"), Term::constant(2)),
        ]);
        assert_eq!(f.atoms().len(), 2);
        assert!(f.size() >= 3);
    }
}
