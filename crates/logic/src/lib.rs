//! Linear integer arithmetic (LIA) syntax for the ComPACT termination
//! analyzer.
//!
//! This crate defines the logical language of §3.2 of *"Termination Analysis
//! without the Tears"*:
//!
//! * [`Symbol`] — interned variable names (with the `x` / `x'` priming
//!   convention used for transition formulas);
//! * [`Term`] — linear terms `c + Σ aᵢ·xᵢ`, kept in normal form;
//! * [`Atom`] / [`Formula`] — LIA formulas with conjunction, disjunction,
//!   negation and quantifiers, plus divisibility atoms (needed by Cooper
//!   quantifier elimination);
//! * [`Valuation`] — integer assignments used as program states and
//!   transitions;
//! * [`parse_formula`] / [`parse_term`] — a small concrete syntax used by
//!   tests and benchmark definitions.
//!
//! Satisfiability, validity and quantifier elimination live in `compact-smt`;
//! this crate is purely syntactic (construction, substitution, evaluation,
//! normal forms).

#![warn(missing_docs)]

mod formula;
mod parser;
mod symbol;
mod term;
mod valuation;

pub use formula::{Atom, Formula};
pub use parser::{parse_formula, parse_term, ParseError};
pub use symbol::Symbol;
pub use term::Term;
pub use valuation::Valuation;
