//! A small parser for LIA formulas, used by tests, examples and benchmark
//! definitions.
//!
//! Grammar (informal):
//!
//! ```text
//! formula := or ( "->" formula )?                 (implication, right assoc.)
//! or      := and ( "||" and )*
//! and     := unary ( "&&" unary )*
//! unary   := "!" unary
//!          | "exists" ident+ "." formula
//!          | "forall" ident+ "." formula
//!          | "true" | "false"
//!          | term relop term
//!          | integer "|" term                      (divisibility)
//!          | "(" formula ")"
//! relop   := "<=" | "<" | ">=" | ">" | "==" | "=" | "!="
//! term    := product ( ("+"|"-") product )*
//! product := factor ( "*" factor )*                (must stay linear)
//! factor  := integer | ident | "-" factor | "(" term ")"
//! ```

use crate::{Formula, Symbol, Term};
use compact_arith::Int;
use std::fmt;

/// Error produced when parsing a formula or term fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an LIA formula from its textual representation.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a well-formed formula or the
/// arithmetic is non-linear.
///
/// # Examples
///
/// ```
/// use compact_logic::parse_formula;
/// let f = parse_formula("x >= 0 && exists k. x = 2*k").unwrap();
/// assert_eq!(f.free_vars().len(), 1);
/// ```
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut parser = Parser::new(input)?;
    let f = parser.formula()?;
    parser.expect_end()?;
    Ok(f)
}

/// Parses a linear term from its textual representation.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a well-formed linear term.
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let mut parser = Parser::new(input)?;
    let t = parser.term()?;
    parser.expect_end()?;
    Ok(t)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Int(Int),
    Ident(String),
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
    AndAnd,
    OrOr,
    Not,
    Le,
    Lt,
    Ge,
    Gt,
    EqEq,
    Neq,
    Arrow,
    Dot,
    Bar,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        let toks = tokenize(input)?;
        Ok(Parser { toks, pos: 0, len: input.len() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(self.len, |(_, p)| *p)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}", what)))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input".to_string()))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError { message, position: self.here() }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or_formula()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.formula()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and_formula()?];
        while self.eat(&Tok::OrOr) {
            parts.push(self.and_formula()?);
        }
        Ok(Formula::or(parts))
    }

    fn and_formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary_formula()?];
        while self.eat(&Tok::AndAnd) {
            parts.push(self.unary_formula()?);
        }
        Ok(Formula::and(parts))
    }

    fn unary_formula(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Formula::not(self.unary_formula()?))
            }
            Some(Tok::Ident(name)) if name == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::Ident(name)) if name == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(name)) if name == "exists" || name == "forall" => {
                let is_exists = name == "exists";
                self.bump();
                let mut vars = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::Ident(v)) => vars.push(Symbol::intern(&v)),
                        _ => return Err(self.error("expected quantified variable".into())),
                    }
                    if self.eat(&Tok::Dot) {
                        break;
                    }
                }
                let body = self.formula()?;
                Ok(if is_exists {
                    Formula::exists(vars, body)
                } else {
                    Formula::forall(vars, body)
                })
            }
            Some(Tok::LParen) => {
                // Could be a parenthesized formula or a parenthesized term in
                // a comparison; try formula first by backtracking.
                let save = self.pos;
                self.bump();
                if let Ok(f) = self.formula() {
                    if self.eat(&Tok::RParen) {
                        // Only accept if not followed by a relational operator
                        // (which would mean the parens enclosed a term).
                        if !matches!(
                            self.peek(),
                            Some(Tok::Le | Tok::Lt | Tok::Ge | Tok::Gt | Tok::EqEq | Tok::Neq)
                        ) {
                            return Ok(f);
                        }
                    }
                }
                self.pos = save;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.term()?;
        // Divisibility: "n | t"
        if self.eat(&Tok::Bar) {
            let rhs = self.term()?;
            if !lhs.is_constant() || !lhs.constant_part().is_positive() {
                return Err(self.error("divisibility modulus must be a positive constant".into()));
            }
            return Ok(Formula::divides(lhs.constant_part().clone(), rhs));
        }
        let op = self
            .bump()
            .ok_or_else(|| self.error("expected comparison operator".into()))?;
        let rhs = self.term()?;
        match op {
            Tok::Le => Ok(Formula::le(lhs, rhs)),
            Tok::Lt => Ok(Formula::lt(lhs, rhs)),
            Tok::Ge => Ok(Formula::ge(lhs, rhs)),
            Tok::Gt => Ok(Formula::gt(lhs, rhs)),
            Tok::EqEq => Ok(Formula::eq(lhs, rhs)),
            Tok::Neq => Ok(Formula::neq(lhs, rhs)),
            _ => Err(self.error("expected comparison operator".into())),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.product()?;
        loop {
            if self.eat(&Tok::Plus) {
                acc = acc + self.product()?;
            } else if self.eat(&Tok::Minus) {
                acc = acc - self.product()?;
            } else {
                return Ok(acc);
            }
        }
    }

    fn product(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.factor()?;
        while self.eat(&Tok::Star) {
            let rhs = self.factor()?;
            acc = if acc.is_constant() {
                rhs.scale(acc.constant_part().clone())
            } else if rhs.is_constant() {
                acc.scale(rhs.constant_part().clone())
            } else {
                return Err(self.error("non-linear multiplication".into()));
            };
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Term::constant(n)),
            Some(Tok::Ident(name)) => Ok(Term::var(Symbol::intern(&name))),
            Some(Tok::Minus) => Ok(-self.factor()?),
            Some(Tok::LParen) => {
                let t = self.term()?;
                self.expect(Tok::RParen, "closing parenthesis")?;
                Ok(t)
            }
            _ => Err(self.error("expected term".into())),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: Int = input[i..j]
                    .parse()
                    .map_err(|_| ParseError { message: "bad integer".into(), position: start })?;
                toks.push((Tok::Int(n), start));
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'\'')
                {
                    j += 1;
                }
                toks.push((Tok::Ident(input[i..j].to_string()), start));
                i = j;
            }
            '+' => {
                toks.push((Tok::Plus, start));
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push((Tok::Arrow, start));
                    i += 2;
                } else {
                    toks.push((Tok::Minus, start));
                    i += 1;
                }
            }
            '*' => {
                toks.push((Tok::Star, start));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, start));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, start));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, start));
                i += 1;
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    toks.push((Tok::AndAnd, start));
                    i += 2;
                } else {
                    return Err(ParseError { message: "expected `&&`".into(), position: start });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    toks.push((Tok::OrOr, start));
                    i += 2;
                } else {
                    toks.push((Tok::Bar, start));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Neq, start));
                    i += 2;
                } else {
                    toks.push((Tok::Not, start));
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Le, start));
                    i += 2;
                } else if i + 2 < bytes.len() && bytes[i + 1] == b'-' && bytes[i + 2] == b'>' {
                    // "<->" is not supported; report a helpful error.
                    return Err(ParseError {
                        message: "bi-implication is not supported; use two implications".into(),
                        position: start,
                    });
                } else {
                    toks.push((Tok::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::Ge, start));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, start));
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((Tok::EqEq, start));
                    i += 2;
                } else {
                    toks.push((Tok::EqEq, start));
                    i += 1;
                }
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", other),
                    position: start,
                });
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Valuation;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn parse_simple_comparisons() {
        let f = parse_formula("x + 1 <= 2*y").unwrap();
        let mut v = Valuation::new();
        v.set(sym("x"), 1.into());
        v.set(sym("y"), 1.into());
        assert_eq!(f.eval(&v), Some(true));
        v.set(sym("y"), 0.into());
        assert_eq!(f.eval(&v), Some(false));
    }

    #[test]
    fn parse_connectives_and_quantifiers() {
        let f = parse_formula("exists k. x = 2*k && k >= 0").unwrap();
        assert_eq!(f.free_vars(), [sym("x")].into_iter().collect());
        let g = parse_formula("forall y. y >= 0 -> y + x >= 0").unwrap();
        assert_eq!(g.free_vars(), [sym("x")].into_iter().collect());
        let h = parse_formula("!(a < b) || a != c").unwrap();
        assert!(h.is_quantifier_free());
    }

    #[test]
    fn parse_divisibility() {
        let f = parse_formula("2 | x + 1").unwrap();
        let mut v = Valuation::new();
        v.set(sym("x"), 3.into());
        assert_eq!(f.eval(&v), Some(true));
        v.set(sym("x"), 2.into());
        assert_eq!(f.eval(&v), Some(false));
        assert!(parse_formula("x | 2").is_err());
    }

    #[test]
    fn parse_parenthesized() {
        let f = parse_formula("(x <= 0 || y <= 0) && (x + y) >= -5").unwrap();
        let mut v = Valuation::new();
        v.set(sym("x"), 0.into());
        v.set(sym("y"), 3.into());
        assert_eq!(f.eval(&v), Some(true));
    }

    #[test]
    fn parse_terms() {
        let t = parse_term("3*x - (y + 2) + 4").unwrap();
        assert_eq!(t.coeff(&sym("x")), 3.into());
        assert_eq!(t.coeff(&sym("y")), (-1).into());
        assert_eq!(*t.constant_part(), 2.into());
    }

    #[test]
    fn reject_nonlinear_and_garbage() {
        assert!(parse_formula("x*y <= 0").is_err());
        assert!(parse_formula("x <=").is_err());
        assert!(parse_formula("@").is_err());
        assert!(parse_formula("x < 1 extra").is_err());
    }

    #[test]
    fn primed_identifiers() {
        let f = parse_formula("x' = x + 1").unwrap();
        assert!(f.free_vars().contains(&sym("x'")));
        assert!(f.free_vars().contains(&sym("x")));
    }
}
