//! Interned variable symbols.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned variable name.
///
/// Symbols are cheap to copy, hash and compare; the actual string is stored
/// in a process-wide interner.  Two symbols are equal iff their names are
/// equal.
///
/// # Examples
///
/// ```
/// use compact_logic::Symbol;
/// let x = Symbol::intern("x");
/// let x2 = Symbol::intern("x");
/// assert_eq!(x, x2);
/// assert_eq!(x.name(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner { names: Vec::new(), map: HashMap::new() })
    })
}

impl Symbol {
    /// Interns a name, returning its symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut interner = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = interner.map.get(name) {
            return Symbol(id);
        }
        let id = interner.names.len() as u32;
        interner.names.push(name.to_string());
        interner.map.insert(name.to_string(), id);
        Symbol(id)
    }

    /// The name of this symbol.
    pub fn name(&self) -> String {
        let interner = interner().lock().expect("symbol interner poisoned");
        interner.names[self.0 as usize].clone()
    }

    /// Returns a fresh symbol whose name starts with `prefix` and which has
    /// never been interned before.
    pub fn fresh(prefix: &str) -> Symbol {
        let mut interner = interner().lock().expect("symbol interner poisoned");
        let mut i = interner.names.len();
        loop {
            let candidate = format!("{}${}", prefix, i);
            if !interner.map.contains_key(&candidate) {
                let id = interner.names.len() as u32;
                interner.names.push(candidate.clone());
                interner.map.insert(candidate, id);
                return Symbol(id);
            }
            i += 1;
        }
    }

    /// The "primed" version of this symbol (conventionally, the post-state
    /// copy of a program variable): `x` becomes `x'`.
    pub fn primed(&self) -> Symbol {
        Symbol::intern(&format!("{}'", self.name()))
    }

    /// Returns `true` if this symbol's name ends with a prime.
    pub fn is_primed(&self) -> bool {
        self.name().ends_with('\'')
    }

    /// Strips one trailing prime, if present.
    pub fn unprimed(&self) -> Symbol {
        let name = self.name();
        match name.strip_suffix('\'') {
            Some(base) => Symbol::intern(base),
            None => *self,
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "foo");
        assert_eq!(c.name(), "bar");
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("tmp");
        let b = Symbol::fresh("tmp");
        assert_ne!(a, b);
        assert!(a.name().starts_with("tmp$"));
    }

    #[test]
    fn priming() {
        let x = Symbol::intern("x");
        let xp = x.primed();
        assert_eq!(xp.name(), "x'");
        assert!(xp.is_primed());
        assert!(!x.is_primed());
        assert_eq!(xp.unprimed(), x);
        assert_eq!(x.unprimed(), x);
        assert_eq!(xp.primed().name(), "x''");
        assert_eq!(xp.primed().unprimed(), xp);
    }
}
