//! Linear integer arithmetic terms.

use crate::{Symbol, Valuation};
use compact_arith::{Int, Rat};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear term over integer variables: `c + Σ aᵢ·xᵢ`.
///
/// Every term of the paper's LIA syntax (`t ::= x | n | n·t | t₁ + t₂`)
/// normalizes to this shape, so [`Term`] *is* the normal form: construction
/// by [`Term::var`], [`Term::constant`] and the arithmetic operators keeps
/// terms normalized at all times.
///
/// # Examples
///
/// ```
/// use compact_logic::{Term, Symbol};
/// let x = Term::var(Symbol::intern("x"));
/// let y = Term::var(Symbol::intern("y"));
/// let t = x.clone() * 2 + y - Term::constant(3);
/// assert_eq!(t.to_string(), "2*x + y - 3");
/// assert_eq!(t.coeff(&Symbol::intern("x")), 2.into());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Term {
    coeffs: BTreeMap<Symbol, Int>,
    constant: Int,
}

impl Term {
    /// The zero term.
    pub fn zero() -> Term {
        Term::default()
    }

    /// A constant term.
    pub fn constant(value: impl Into<Int>) -> Term {
        Term { coeffs: BTreeMap::new(), constant: value.into() }
    }

    /// The term consisting of a single variable.
    pub fn var(sym: Symbol) -> Term {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(sym, Int::one());
        Term { coeffs, constant: Int::zero() }
    }

    /// Builds a term from coefficient pairs and a constant.
    pub fn from_parts(parts: impl IntoIterator<Item = (Symbol, Int)>, constant: Int) -> Term {
        let mut t = Term::constant(constant);
        for (sym, coeff) in parts {
            t.add_coeff(sym, coeff);
        }
        t
    }

    fn add_coeff(&mut self, sym: Symbol, coeff: Int) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(sym).or_insert_with(Int::zero);
        *entry += coeff;
        if entry.is_zero() {
            self.coeffs.remove(&sym);
        }
    }

    /// The constant part of the term.
    pub fn constant_part(&self) -> &Int {
        &self.constant
    }

    /// The coefficient of a variable (zero if absent).
    pub fn coeff(&self, sym: &Symbol) -> Int {
        self.coeffs.get(sym).cloned().unwrap_or_else(Int::zero)
    }

    /// Iterates over the (variable, coefficient) pairs with non-zero
    /// coefficient, in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Int)> {
        self.coeffs.iter()
    }

    /// Returns `true` if the term is a constant (has no variables).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns `true` if the term is the constant zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty() && self.constant.is_zero()
    }

    /// The set of variables occurring in the term.
    pub fn vars(&self) -> impl Iterator<Item = &Symbol> {
        self.coeffs.keys()
    }

    /// Returns `true` if the variable occurs with non-zero coefficient.
    pub fn contains_var(&self, sym: &Symbol) -> bool {
        self.coeffs.contains_key(sym)
    }

    /// The number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the term under a valuation.
    ///
    /// Returns `None` if some variable of the term is not assigned.
    pub fn eval(&self, valuation: &Valuation) -> Option<Int> {
        let mut total = self.constant.clone();
        for (sym, coeff) in &self.coeffs {
            total += coeff * valuation.get(sym)?;
        }
        Some(total)
    }

    /// Substitutes variables by terms (simultaneous substitution).
    pub fn substitute(&self, map: &BTreeMap<Symbol, Term>) -> Term {
        let mut result = Term::constant(self.constant.clone());
        for (sym, coeff) in &self.coeffs {
            match map.get(sym) {
                Some(replacement) => {
                    result = result + replacement.clone().scale(coeff.clone());
                }
                None => result.add_coeff(*sym, coeff.clone()),
            }
        }
        result
    }

    /// Renames variables according to the given map.
    pub fn rename(&self, map: &BTreeMap<Symbol, Symbol>) -> Term {
        let mut result = Term::constant(self.constant.clone());
        for (sym, coeff) in &self.coeffs {
            let target = map.get(sym).copied().unwrap_or(*sym);
            result.add_coeff(target, coeff.clone());
        }
        result
    }

    /// Multiplies the term by an integer scalar.
    pub fn scale(&self, k: impl Into<Int>) -> Term {
        let k = k.into();
        if k.is_zero() {
            return Term::zero();
        }
        Term {
            coeffs: self
                .coeffs
                .iter()
                .map(|(s, c)| (*s, c * &k))
                .collect(),
            constant: &self.constant * &k,
        }
    }

    /// The greatest common divisor of all variable coefficients
    /// (zero for constant terms).
    pub fn coeff_gcd(&self) -> Int {
        self.coeffs
            .values()
            .fold(Int::zero(), |g, c| g.gcd(c))
    }

    /// Splits the term into the coefficient of `sym` and the rest.
    pub fn split_var(&self, sym: &Symbol) -> (Int, Term) {
        let coeff = self.coeff(sym);
        let mut rest = self.clone();
        rest.coeffs.remove(sym);
        (coeff, rest)
    }

    /// Converts the variable coefficients to a dense rational vector with
    /// respect to a variable ordering; returns the vector and the constant.
    pub fn to_dense(&self, order: &[Symbol]) -> (Vec<Rat>, Rat) {
        let vec = order
            .iter()
            .map(|s| Rat::from_int(self.coeff(s)))
            .collect();
        (vec, Rat::from_int(self.constant.clone()))
    }
}

impl Add for Term {
    type Output = Term;
    fn add(self, other: Term) -> Term {
        let mut result = self;
        result.constant += other.constant;
        for (sym, coeff) in other.coeffs {
            result.add_coeff(sym, coeff);
        }
        result
    }
}

impl Sub for Term {
    type Output = Term;
    fn sub(self, other: Term) -> Term {
        self + (-other)
    }
}

impl Neg for Term {
    type Output = Term;
    fn neg(self) -> Term {
        self.scale(Int::from(-1))
    }
}

impl Mul<i64> for Term {
    type Output = Term;
    fn mul(self, k: i64) -> Term {
        self.scale(Int::from(k))
    }
}

impl Mul<Int> for Term {
    type Output = Term;
    fn mul(self, k: Int) -> Term {
        self.scale(k)
    }
}

impl Add<i64> for Term {
    type Output = Term;
    fn add(self, k: i64) -> Term {
        self + Term::constant(k)
    }
}

impl Sub<i64> for Term {
    type Output = Term;
    fn sub(self, k: i64) -> Term {
        self - Term::constant(k)
    }
}

impl From<Symbol> for Term {
    fn from(sym: Symbol) -> Term {
        Term::var(sym)
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Term {
        Term::constant(v)
    }
}

impl From<Int> for Term {
    fn from(v: Int) -> Term {
        Term::constant(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "{}", self.constant);
        }
        let mut first = true;
        for (sym, coeff) in &self.coeffs {
            if first {
                if coeff.is_one() {
                    write!(f, "{}", sym)?;
                } else if *coeff == Int::from(-1) {
                    write!(f, "-{}", sym)?;
                } else {
                    write!(f, "{}*{}", coeff, sym)?;
                }
                first = false;
            } else if coeff.is_positive() {
                if coeff.is_one() {
                    write!(f, " + {}", sym)?;
                } else {
                    write!(f, " + {}*{}", coeff, sym)?;
                }
            } else if coeff.abs().is_one() {
                write!(f, " - {}", sym)?;
            } else {
                write!(f, " - {}*{}", coeff.abs(), sym)?;
            }
        }
        if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn construction_and_normalization() {
        let x = Term::var(sym("x"));
        let t = x.clone() + x.clone() - x.clone() * 2;
        assert!(t.is_zero());
        let u = Term::var(sym("y")) * 3 + 5;
        assert_eq!(u.coeff(&sym("y")), 3.into());
        assert_eq!(*u.constant_part(), 5.into());
        assert!(!u.is_constant());
        assert!(Term::constant(7).is_constant());
    }

    #[test]
    fn display() {
        let t = Term::var(sym("a")) * 2 - Term::var(sym("b")) + 1;
        assert_eq!(t.to_string(), "2*a - b + 1");
        assert_eq!(Term::zero().to_string(), "0");
        assert_eq!((Term::var(sym("a")) - 3).to_string(), "a - 3");
        assert_eq!((-Term::var(sym("a"))).to_string(), "-a");
    }

    #[test]
    fn evaluation() {
        let t = Term::var(sym("x")) * 2 + Term::var(sym("y")) - 7;
        let mut v = Valuation::new();
        v.set(sym("x"), 5.into());
        assert_eq!(t.eval(&v), None);
        v.set(sym("y"), 3.into());
        assert_eq!(t.eval(&v), Some(6.into()));
    }

    #[test]
    fn substitution() {
        // t = x + 2y ; x -> y + 1 gives 3y + 1
        let t = Term::var(sym("x")) + Term::var(sym("y")) * 2;
        let mut map = BTreeMap::new();
        map.insert(sym("x"), Term::var(sym("y")) + 1);
        let s = t.substitute(&map);
        assert_eq!(s.coeff(&sym("y")), 3.into());
        assert_eq!(*s.constant_part(), 1.into());
        assert!(!s.contains_var(&sym("x")));
    }

    #[test]
    fn simultaneous_substitution_does_not_cascade() {
        // x -> y, y -> x should swap, not collapse.
        let t = Term::var(sym("x")) - Term::var(sym("y"));
        let mut map = BTreeMap::new();
        map.insert(sym("x"), Term::var(sym("y")));
        map.insert(sym("y"), Term::var(sym("x")));
        let s = t.substitute(&map);
        assert_eq!(s.coeff(&sym("x")), Int::from(-1));
        assert_eq!(s.coeff(&sym("y")), Int::from(1));
    }

    #[test]
    fn rename_and_split() {
        let t = Term::var(sym("p")) * 4 + Term::var(sym("q")) - 2;
        let mut map = BTreeMap::new();
        map.insert(sym("p"), sym("r"));
        let renamed = t.rename(&map);
        assert_eq!(renamed.coeff(&sym("r")), 4.into());
        assert!(!renamed.contains_var(&sym("p")));
        let (c, rest) = t.split_var(&sym("p"));
        assert_eq!(c, 4.into());
        assert!(!rest.contains_var(&sym("p")));
        assert_eq!(rest.coeff(&sym("q")), 1.into());
    }

    #[test]
    fn coeff_gcd() {
        let t = Term::var(sym("x")) * 6 + Term::var(sym("y")) * 9 + 5;
        assert_eq!(t.coeff_gcd(), 3.into());
        assert_eq!(Term::constant(5).coeff_gcd(), 0.into());
    }

    #[test]
    fn dense_conversion() {
        let t = Term::var(sym("x")) * 2 - Term::var(sym("z")) + 7;
        let order = vec![sym("x"), sym("y"), sym("z")];
        let (v, c) = t.to_dense(&order);
        assert_eq!(v, vec![Rat::from(2), Rat::from(0), Rat::from(-1)]);
        assert_eq!(c, Rat::from(7));
    }
}
