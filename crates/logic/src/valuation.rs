//! Valuations: assignments of integers to variables.

use crate::Symbol;
use compact_arith::Int;
use std::collections::BTreeMap;
use std::fmt;

/// A (partial) assignment of integer values to variables.
///
/// Valuations play the role of program *states* (over `Var`) and
/// *transitions* (over `Var ∪ Var'`) in the paper (§3.3).
///
/// # Examples
///
/// ```
/// use compact_logic::{Valuation, Symbol};
/// let mut v = Valuation::new();
/// v.set(Symbol::intern("x"), 3.into());
/// assert_eq!(v.get(&Symbol::intern("x")), Some(&3.into()));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Valuation {
    values: BTreeMap<Symbol, Int>,
}

impl Valuation {
    /// Creates an empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// Assigns a value to a variable (overwriting any previous value).
    pub fn set(&mut self, sym: Symbol, value: Int) {
        self.values.insert(sym, value);
    }

    /// Looks up the value of a variable.
    pub fn get(&self, sym: &Symbol) -> Option<&Int> {
        self.values.get(sym)
    }

    /// Returns `true` if the variable is assigned.
    pub fn contains(&self, sym: &Symbol) -> bool {
        self.values.contains_key(sym)
    }

    /// Iterates over the assignments in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Int)> {
        self.values.iter()
    }

    /// The number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges another valuation into this one (the other wins on conflicts).
    pub fn extend(&mut self, other: &Valuation) {
        for (k, v) in other.iter() {
            self.values.insert(*k, v.clone());
        }
    }

    /// Builds the transition valuation `[s, s']` of the paper: the variables
    /// of `pre` unchanged plus the variables of `post` primed.
    pub fn transition(pre: &Valuation, post: &Valuation) -> Valuation {
        let mut t = pre.clone();
        for (sym, value) in post.iter() {
            t.set(sym.primed(), value.clone());
        }
        t
    }

    /// Restricts the valuation to the given variables.
    pub fn restrict<'a>(&self, vars: impl IntoIterator<Item = &'a Symbol>) -> Valuation {
        let mut out = Valuation::new();
        for sym in vars {
            if let Some(v) = self.get(sym) {
                out.set(*sym, v.clone());
            }
        }
        out
    }
}

impl FromIterator<(Symbol, Int)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (Symbol, Int)>>(iter: I) -> Valuation {
        Valuation { values: iter.into_iter().collect() }
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (sym, value)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} -> {}", sym, value)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut v = Valuation::new();
        assert!(v.is_empty());
        v.set(Symbol::intern("a"), 1.into());
        v.set(Symbol::intern("b"), 2.into());
        assert_eq!(v.len(), 2);
        assert!(v.contains(&Symbol::intern("a")));
        assert_eq!(v.get(&Symbol::intern("b")), Some(&2.into()));
        assert_eq!(v.get(&Symbol::intern("c")), None);
    }

    #[test]
    fn transition_construction() {
        let mut pre = Valuation::new();
        pre.set(Symbol::intern("x"), 1.into());
        let mut post = Valuation::new();
        post.set(Symbol::intern("x"), 2.into());
        let t = Valuation::transition(&pre, &post);
        assert_eq!(t.get(&Symbol::intern("x")), Some(&1.into()));
        assert_eq!(t.get(&Symbol::intern("x'")), Some(&2.into()));
    }

    #[test]
    fn restrict_and_extend() {
        let v: Valuation = [
            (Symbol::intern("x"), Int::from(1)),
            (Symbol::intern("y"), Int::from(2)),
        ]
        .into_iter()
        .collect();
        let r = v.restrict(&[Symbol::intern("x")]);
        assert_eq!(r.len(), 1);
        let mut w = Valuation::new();
        w.set(Symbol::intern("y"), 9.into());
        let mut merged = v.clone();
        merged.extend(&w);
        assert_eq!(merged.get(&Symbol::intern("y")), Some(&9.into()));
    }
}
