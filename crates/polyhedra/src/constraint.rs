//! Convex polyhedra in constraint representation.

use compact_arith::{ConstraintOp, Int, LinearProgram, LpResult, Rat};
use compact_logic::{Atom, Formula, Symbol, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A single linear constraint `term ≤ 0` or `term = 0` over integer-valued
/// variables (the term has integer coefficients).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Constraint {
    /// The left-hand side; the constraint is `term (≤ or =) 0`.
    pub term: Term,
    /// `true` for an equality, `false` for `≤`.
    pub is_eq: bool,
}

impl Constraint {
    /// Creates the inequality `term <= 0`.
    pub fn le(term: Term) -> Constraint {
        Constraint { term, is_eq: false }
    }

    /// Creates the equality `term = 0`.
    pub fn eq(term: Term) -> Constraint {
        Constraint { term, is_eq: true }
    }

    /// Divides all coefficients (and the constant) by their common gcd.
    /// This is a rational-equivalence-preserving normalization.
    pub fn normalize(&self) -> Constraint {
        let mut g = self.term.coeff_gcd();
        g = g.gcd(self.term.constant_part());
        if g.is_zero() || g.is_one() {
            return self.clone();
        }
        let term = Term::from_parts(
            self.term.iter().map(|(s, c)| (*s, c.div_floor(&g))),
            self.term.constant_part().div_floor(&g),
        );
        Constraint { term, is_eq: self.is_eq }
    }

    /// Converts the constraint to a formula atom.
    pub fn to_atom(&self) -> Atom {
        if self.is_eq {
            Atom::Eq(self.term.clone())
        } else {
            Atom::Le(self.term.clone())
        }
    }

    /// The variables mentioned by the constraint.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        self.term.vars().copied().collect()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_eq {
            write!(f, "{} = 0", self.term)
        } else {
            write!(f, "{} <= 0", self.term)
        }
    }
}

/// A convex polyhedron `{x : A x ≤ b, C x = d}` given by its constraints.
///
/// Polyhedra are used to over-approximate transition formulas: the `(-)★`
/// operator needs the convex hull of the Δ-formula (§3.3) and the
/// inter-procedural analysis needs affine hulls (Appendix B).
///
/// # Examples
///
/// ```
/// use compact_polyhedra::Polyhedron;
/// use compact_logic::parse_formula;
/// let p = Polyhedron::from_formula_conjuncts(&parse_formula("x >= 0 && x <= 5").unwrap());
/// assert!(!p.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polyhedron {
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universal polyhedron (no constraints).
    pub fn top() -> Polyhedron {
        Polyhedron::default()
    }

    /// An explicitly empty polyhedron (`0 ≤ -1`).
    pub fn bottom() -> Polyhedron {
        Polyhedron { constraints: vec![Constraint::le(Term::constant(1))] }
    }

    /// Builds a polyhedron from constraints.
    pub fn from_constraints(constraints: Vec<Constraint>) -> Polyhedron {
        Polyhedron { constraints: constraints.into_iter().map(|c| c.normalize()).collect() }
    }

    /// Builds a polyhedron from the convex atoms of a cube.
    ///
    /// Equality and inequality atoms are kept; disequality and divisibility
    /// atoms are *dropped*, which makes the result an over-approximation of
    /// the cube — exactly what the hull-based operators require.
    pub fn from_atoms(atoms: &[Atom]) -> Polyhedron {
        let mut constraints = Vec::new();
        for atom in atoms {
            match atom {
                Atom::Le(t) => constraints.push(Constraint::le(t.clone())),
                Atom::Eq(t) => constraints.push(Constraint::eq(t.clone())),
                Atom::Neq(_) | Atom::Divides(..) | Atom::NotDivides(..) => {}
            }
        }
        Polyhedron::from_constraints(constraints)
    }

    /// Builds a polyhedron from the top-level conjuncts of a formula,
    /// dropping anything non-convex (an over-approximation).
    pub fn from_formula_conjuncts(f: &Formula) -> Polyhedron {
        let mut atoms = Vec::new();
        for conjunct in f.conjuncts() {
            if let Formula::Atom(a) = conjunct {
                atoms.push(a.clone());
            }
        }
        Polyhedron::from_atoms(&atoms)
    }

    /// The constraints of the polyhedron.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The variables mentioned by the polyhedron.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        self.constraints.iter().flat_map(|c| c.vars()).collect()
    }

    /// Adds a constraint.
    pub fn add(&mut self, c: Constraint) {
        self.constraints.push(c.normalize());
    }

    /// Converts the polyhedron back to a formula (a conjunction of atoms).
    pub fn to_formula(&self) -> Formula {
        Formula::and(
            self.constraints
                .iter()
                .map(|c| Formula::atom(c.to_atom()))
                .collect(),
        )
    }

    /// Returns `true` if the polyhedron has no *rational* point.
    pub fn is_empty(&self) -> bool {
        self.lp().find_point().is_none()
    }

    /// Returns `true` if the polyhedron has no constraints.
    pub fn is_top(&self) -> bool {
        self.constraints.is_empty()
    }

    fn lp(&self) -> LinearProgram {
        let vars: Vec<Symbol> = self.vars().into_iter().collect();
        self.lp_over(&vars)
    }

    fn lp_over(&self, vars: &[Symbol]) -> LinearProgram {
        let mut lp = LinearProgram::new(vars.len());
        for c in &self.constraints {
            let (coeffs, constant) = c.term.to_dense(vars);
            let op = if c.is_eq { ConstraintOp::Eq } else { ConstraintOp::Le };
            lp.add_constraint(coeffs, op, -constant);
        }
        lp
    }

    /// Checks whether the polyhedron (rationally) entails `candidate ≤ 0`
    /// (or `= 0` for equality candidates).
    pub fn entails(&self, candidate: &Constraint) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut vars: Vec<Symbol> = self.vars().into_iter().collect();
        for v in candidate.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lp = self.lp_over(&vars);
        let (coeffs, constant) = candidate.term.to_dense(&vars);
        // max term over the polyhedron must be <= 0.
        let max_le_zero = match lp.maximize(&coeffs) {
            LpResult::Optimal { value, .. } => value + constant.clone() <= Rat::zero(),
            LpResult::Unbounded => false,
            LpResult::Infeasible => true,
        };
        if !candidate.is_eq {
            return max_le_zero;
        }
        if !max_le_zero {
            return false;
        }
        match lp.minimize(&coeffs) {
            LpResult::Optimal { value, .. } => value + constant >= Rat::zero(),
            LpResult::Unbounded => false,
            LpResult::Infeasible => true,
        }
    }

    /// Removes constraints that are implied by the remaining ones.
    pub fn remove_redundant(&mut self) {
        // Deduplicate first.
        let mut unique: Vec<Constraint> = Vec::new();
        for c in &self.constraints {
            if !unique.contains(c) {
                unique.push(c.clone());
            }
        }
        self.constraints = unique;
        let mut i = 0;
        while i < self.constraints.len() {
            let candidate = self.constraints[i].clone();
            let rest = Polyhedron {
                constraints: self
                    .constraints
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect(),
            };
            if rest.entails(&candidate) {
                self.constraints.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Projects the polyhedron onto the complement of `eliminate`, i.e.
    /// existentially quantifies the given variables away, using
    /// Fourier–Motzkin elimination (exact over the rationals).
    pub fn project_out(&self, eliminate: &[Symbol]) -> Polyhedron {
        let mut current = self.clone();
        for var in eliminate {
            current = current.eliminate_one(var);
            current.remove_redundant();
            if current.is_empty() {
                return Polyhedron::bottom();
            }
        }
        current
    }

    /// Eliminates a single variable by Fourier–Motzkin.
    fn eliminate_one(&self, var: &Symbol) -> Polyhedron {
        let mut kept: Vec<Constraint> = Vec::new();
        let mut uppers: Vec<(Int, Term)> = Vec::new(); // a > 0 in a*x + r <= 0
        let mut lowers: Vec<(Int, Term)> = Vec::new(); // a < 0 in a*x + r <= 0
        let mut equalities: Vec<(Int, Term)> = Vec::new();

        for c in &self.constraints {
            let (a, rest) = c.term.split_var(var);
            if a.is_zero() {
                kept.push(c.clone());
            } else if c.is_eq {
                equalities.push((a, rest));
            } else if a.is_positive() {
                uppers.push((a, rest));
            } else {
                lowers.push((a, rest));
            }
        }

        // If there is an equality involving the variable, use it to
        // substitute the variable everywhere else.
        if let Some((c_coeff, c_rest)) = equalities.first().cloned() {
            let mut out = kept;
            let abs_c = c_coeff.abs();
            let sign_c = Int::from(c_coeff.signum() as i64);
            // For a constraint d*x + s (≤/=) 0:   |c|*(d*x + s) - sign(c)*d*(c*x + r)
            //   has x-coefficient |c| d - sign(c) d c = 0.
            let substitute = |d: &Int, s: &Term| -> Term {
                s.clone().scale(abs_c.clone()) - c_rest.clone().scale(&sign_c * d)
            };
            for (a, rest) in uppers.iter().chain(lowers.iter()) {
                out.push(Constraint::le(substitute(a, rest)));
            }
            for (a, rest) in equalities.iter().skip(1) {
                out.push(Constraint::eq(substitute(a, rest)));
            }
            return Polyhedron::from_constraints(out);
        }

        // Otherwise combine every upper bound with every lower bound.
        let mut out = kept;
        for (a, r) in &uppers {
            for (b, s) in &lowers {
                // a > 0, b < 0.  From a*x <= -r and  b*x <= -s (i.e. x >= -s/b):
                //   (-b)*(a x + r) + a*(b x + s) <= 0  ⇔  (-b) r + a s <= 0
                let combined = r.clone().scale(-b.clone()) + s.clone().scale(a.clone());
                out.push(Constraint::le(combined));
            }
        }
        Polyhedron::from_constraints(out)
    }

    /// Returns a rational point of the polyhedron, if non-empty, as a pair of
    /// variable order and coordinates.
    pub fn sample_point(&self) -> Option<(Vec<Symbol>, Vec<Rat>)> {
        let vars: Vec<Symbol> = self.vars().into_iter().collect();
        let point = self.lp_over(&vars).find_point()?;
        Some((vars, point))
    }

    /// Intersects two polyhedra.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        let mut constraints = self.constraints.clone();
        constraints.extend(other.constraints.iter().cloned());
        Polyhedron::from_constraints(constraints)
    }

    /// Checks (rational) inclusion `self ⊆ other`.
    pub fn includes_in(&self, other: &Polyhedron) -> bool {
        other.constraints.iter().all(|c| self.entails(c))
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "top");
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{}", c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn poly(s: &str) -> Polyhedron {
        Polyhedron::from_formula_conjuncts(&parse_formula(s).unwrap())
    }

    #[test]
    fn emptiness() {
        assert!(!poly("x >= 0 && x <= 5").is_empty());
        assert!(poly("x >= 1 && x <= 0").is_empty());
        assert!(Polyhedron::bottom().is_empty());
        assert!(!Polyhedron::top().is_empty());
        assert!(Polyhedron::top().is_top());
    }

    #[test]
    fn entailment() {
        let p = poly("x >= 2 && y = x + 1");
        // x >= 0, i.e. -x <= 0
        assert!(p.entails(&Constraint::le(-Term::var(sym("x")))));
        // y >= 3
        assert!(p.entails(&Constraint::le(Term::constant(3) - Term::var(sym("y")))));
        // x >= 5 should not be entailed.
        assert!(!p.entails(&Constraint::le(Term::constant(5) - Term::var(sym("x")))));
        // y - x = 1, i.e. y - x - 1 = 0
        assert!(p.entails(&Constraint::eq(
            Term::var(sym("y")) - Term::var(sym("x")) - 1
        )));
    }

    #[test]
    fn redundancy_removal() {
        let mut p = poly("x >= 0 && x >= 2 && x <= 10 && x <= 10");
        p.remove_redundant();
        assert_eq!(p.constraints().len(), 2);
    }

    #[test]
    fn projection_simple() {
        // {x, y : 0 <= y, y <= x}  projected on x is x >= 0.
        let p = poly("0 <= y && y <= x");
        let q = p.project_out(&[sym("y")]);
        assert!(q.entails(&Constraint::le(-Term::var(sym("x")))));
        assert!(!q.vars().contains(&sym("y")));
        // And it should not entail anything stronger.
        assert!(!q.entails(&Constraint::le(Term::constant(1) - Term::var(sym("x")))));
    }

    #[test]
    fn projection_with_equalities() {
        // {x, y, z : x = y + 1, y = z + 1} projected on x, z gives x = z + 2.
        let p = poly("x = y + 1 && y = z + 1");
        let q = p.project_out(&[sym("y")]);
        assert!(q.entails(&Constraint::eq(
            Term::var(sym("x")) - Term::var(sym("z")) - 2
        )));
    }

    #[test]
    fn projection_unbounded() {
        // {x, y : y >= x} projected on x: no constraint on x.
        let p = poly("y >= x");
        let q = p.project_out(&[sym("y")]);
        assert!(q.is_top() || !q.is_empty());
        assert!(!q.vars().contains(&sym("y")));
    }

    #[test]
    fn inclusion_and_intersection() {
        let small = poly("x >= 2 && x <= 3");
        let big = poly("x >= 0 && x <= 10");
        assert!(small.includes_in(&big));
        assert!(!big.includes_in(&small));
        let inter = big.intersect(&poly("x >= 9"));
        assert!(!inter.is_empty());
        assert!(inter.entails(&Constraint::le(Term::constant(9) - Term::var(sym("x")))));
    }

    #[test]
    fn sample_points_satisfy_constraints() {
        let p = poly("x + y >= 3 && x <= 2 && y <= 2");
        let (vars, point) = p.sample_point().expect("non-empty");
        // Verify each constraint at the sampled point.
        for c in p.constraints() {
            let (coeffs, constant) = c.term.to_dense(&vars);
            let value: Rat = coeffs
                .iter()
                .zip(point.iter())
                .map(|(a, x)| a * x)
                .sum::<Rat>()
                + constant;
            if c.is_eq {
                assert!(value.is_zero());
            } else {
                assert!(value <= Rat::zero());
            }
        }
    }

    #[test]
    fn from_atoms_drops_nonconvex() {
        let f = parse_formula("x >= 0 && x != 5 && 2 | x").unwrap();
        let atoms: Vec<Atom> = f.atoms().into_iter().cloned().collect();
        let p = Polyhedron::from_atoms(&atoms);
        assert_eq!(p.constraints().len(), 1);
    }
}
