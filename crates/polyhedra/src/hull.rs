//! Convex hull and affine hull of LIA formulas.
//!
//! `conv(F)` (§3.2 of the paper) is the strongest conjunction of linear
//! inequalities entailed by `F`; it drives the recurrence-based `(-)★`
//! operator.  The affine hull (`ρ_aff`, Appendix B) is the strongest
//! conjunction of linear *equalities* entailed by `F`; it is the closure
//! operator used by the inter-procedural summary iteration.

use crate::{Constraint, Polyhedron};
use compact_arith::{Int, QMat, QVec, Rat};
use compact_logic::{Formula, Symbol, Term, Valuation};
use compact_smt::Solver;
use std::collections::BTreeMap;

/// Maximum number of DNF cubes enumerated before giving up on an exact hull.
const CUBE_LIMIT: usize = 256;

/// Computes the convex hull of the union of two polyhedra (the smallest
/// closed convex polyhedron containing both), using the classic "lifting"
/// encoding followed by Fourier–Motzkin projection.
pub fn hull_pair(p1: &Polyhedron, p2: &Polyhedron) -> Polyhedron {
    if p1.is_empty() {
        return p2.clone();
    }
    if p2.is_empty() {
        return p1.clone();
    }
    if p1.is_top() || p2.is_top() {
        return Polyhedron::top();
    }
    // Shared variable order.
    let mut vars: Vec<Symbol> = p1.vars().into_iter().collect();
    for v in p2.vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }

    // Lifted variables: x = x1 + x2,  A1 x1 <= b1*λ,  A2 x2 <= b2*(1-λ),
    // 0 <= λ <= 1.  Projecting out x1, x2, λ yields cl(conv(P1 ∪ P2)).
    let lambda = Symbol::fresh("hull_lambda");
    let mut fresh1: BTreeMap<Symbol, Symbol> = BTreeMap::new();
    let mut fresh2: BTreeMap<Symbol, Symbol> = BTreeMap::new();
    for v in &vars {
        fresh1.insert(*v, Symbol::fresh(&format!("{}_h1", v.name())));
        fresh2.insert(*v, Symbol::fresh(&format!("{}_h2", v.name())));
    }

    let mut lifted: Vec<Constraint> = Vec::new();
    // Homogenize P1 over the fresh1 variables with multiplier λ.
    for c in p1.constraints() {
        lifted.push(homogenize(c, &fresh1, lambda, false));
    }
    // Homogenize P2 over the fresh2 variables with multiplier (1 - λ).
    for c in p2.constraints() {
        lifted.push(homogenize(c, &fresh2, lambda, true));
    }
    // x = x1 + x2.
    for v in &vars {
        lifted.push(Constraint::eq(
            Term::var(*v) - Term::var(fresh1[v]) - Term::var(fresh2[v]),
        ));
    }
    // 0 <= λ <= 1.
    lifted.push(Constraint::le(-Term::var(lambda)));
    lifted.push(Constraint::le(Term::var(lambda) - 1));

    let lifted_poly = Polyhedron::from_constraints(lifted);
    let mut eliminate: Vec<Symbol> = vec![lambda];
    eliminate.extend(fresh1.values().copied());
    eliminate.extend(fresh2.values().copied());
    let mut hull = lifted_poly.project_out(&eliminate);
    hull.remove_redundant();
    hull
}

/// Homogenizes `term (≤/=) 0` over renamed variables: the constant `c`
/// becomes `c·λ` (or `c·(1-λ)` when `complement` is set).
fn homogenize(
    c: &Constraint,
    rename: &BTreeMap<Symbol, Symbol>,
    lambda: Symbol,
    complement: bool,
) -> Constraint {
    let constant = c.term.constant_part().clone();
    // Variable part, renamed.
    let var_part = Term::from_parts(
        c.term.iter().map(|(s, coeff)| (rename[s], coeff.clone())),
        Int::zero(),
    );
    let scaled_constant = if complement {
        // c*(1-λ) = c - c*λ
        Term::constant(constant.clone()) - Term::var(lambda).scale(constant)
    } else {
        Term::var(lambda).scale(constant)
    };
    let term = var_part + scaled_constant;
    if c.is_eq {
        Constraint::eq(term)
    } else {
        Constraint::le(term)
    }
}

/// Computes the convex hull `conv(F)` of a formula: the strongest convex
/// polyhedron (over the free variables of `F`) that contains every model of
/// `F`.
///
/// The formula is decomposed into satisfiable DNF cubes, each cube is relaxed
/// to a polyhedron (dropping non-convex atoms), and the cubes are hulled
/// pairwise.  If the formula has too many cubes, the result falls back to the
/// universal polyhedron (a sound over-approximation).
pub fn convex_hull(solver: &Solver, f: &Formula) -> Polyhedron {
    if f.is_false() || !solver.is_sat(f) {
        return Polyhedron::bottom();
    }
    let Some(cubes) = solver.dnf_cubes(f, CUBE_LIMIT) else {
        return Polyhedron::top();
    };
    let mut result: Option<Polyhedron> = None;
    for cube in cubes {
        let p = Polyhedron::from_atoms(&cube);
        result = Some(match result {
            None => p,
            Some(acc) => hull_pair(&acc, &p),
        });
        if result.as_ref().is_some_and(Polyhedron::is_top) {
            return Polyhedron::top();
        }
    }
    result.unwrap_or_else(Polyhedron::bottom)
}

/// Computes the affine hull of a formula: the strongest conjunction of
/// linear equalities entailed by it, as a polyhedron of equality constraints.
///
/// Uses the standard model-based algorithm: maintain a set of models, compute
/// the affine span of the models, and ask the solver for a model outside the
/// span until none exists.
pub fn affine_hull(solver: &Solver, f: &Formula) -> Polyhedron {
    let vars: Vec<Symbol> = f.free_vars().into_iter().collect();
    let Some(first) = solver.model(f) else {
        return Polyhedron::bottom();
    };
    let mut models: Vec<Valuation> = vec![first];

    loop {
        let equalities = affine_span_equalities(&models, &vars);
        if equalities.is_empty() {
            return Polyhedron::top();
        }
        // Is there a model of f violating one of the equalities?
        let violation = Formula::and(vec![
            f.clone(),
            Formula::or(
                equalities
                    .iter()
                    .map(|t| Formula::neq(t.clone(), Term::constant(0)))
                    .collect(),
            ),
        ]);
        match solver.model(&violation) {
            None => {
                return Polyhedron::from_constraints(
                    equalities.into_iter().map(Constraint::eq).collect(),
                );
            }
            Some(m) => models.push(m),
        }
    }
}

/// Given models over `vars`, returns terms `t` such that `t = 0` holds for
/// the affine span of the models.
fn affine_span_equalities(models: &[Valuation], vars: &[Symbol]) -> Vec<Term> {
    if models.is_empty() || vars.is_empty() {
        return Vec::new();
    }
    let base = &models[0];
    // Rows are the difference vectors m_i - m_0.
    let rows: Vec<Vec<Rat>> = models[1..]
        .iter()
        .map(|m| {
            vars.iter()
                .map(|v| {
                    let a = m.get(v).cloned().unwrap_or_else(Int::zero);
                    let b = base.get(v).cloned().unwrap_or_else(Int::zero);
                    Rat::from_int(a - b)
                })
                .collect()
        })
        .collect();
    let normals: Vec<QVec> = if rows.is_empty() {
        // Affine hull of a single point: every axis direction is a normal.
        (0..vars.len())
            .map(|i| {
                let mut v = QVec::zeros(vars.len());
                v[i] = Rat::one();
                v
            })
            .collect()
    } else {
        // Normal vectors are the null space of the row space, i.e. vectors a
        // with  D a = 0 where D has the difference vectors as rows.
        QMat::from_rows(rows).nullspace_basis()
    };

    normals
        .iter()
        .filter(|n| !n.is_zero())
        .map(|n| {
            // Build integer term a·x - a·m0 = 0, clearing denominators.
            let mut denom_lcm = Int::one();
            for entry in n.iter() {
                denom_lcm = denom_lcm.lcm(entry.denom());
            }
            let mut term = Term::zero();
            for (i, v) in vars.iter().enumerate() {
                let coeff = (n[i].numer() * &denom_lcm) / n[i].denom();
                term = term + Term::var(*v).scale(coeff);
            }
            let mut offset = Int::zero();
            for (i, v) in vars.iter().enumerate() {
                let coeff = (n[i].numer() * &denom_lcm) / n[i].denom();
                let value = base.get(v).cloned().unwrap_or_else(Int::zero);
                offset += coeff * value;
            }
            term - Term::constant(offset)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn poly(s: &str) -> Polyhedron {
        Polyhedron::from_formula_conjuncts(&parse_formula(s).unwrap())
    }

    #[test]
    fn hull_of_two_points() {
        // {x = 0} ∪ {x = 4} hulls to 0 <= x <= 4.
        let p = hull_pair(&poly("x = 0"), &poly("x = 4"));
        assert!(p.entails(&Constraint::le(-Term::var(sym("x")))));
        assert!(p.entails(&Constraint::le(Term::var(sym("x")) - 4)));
        assert!(!p.entails(&Constraint::le(Term::var(sym("x")) - 3)));
    }

    #[test]
    fn hull_of_boxes() {
        let p = hull_pair(
            &poly("0 <= x && x <= 1 && 0 <= y && y <= 1"),
            &poly("3 <= x && x <= 4 && 3 <= y && y <= 4"),
        );
        // The hull contains the diagonal band; x and y are bounded by [0,4].
        assert!(p.entails(&Constraint::le(-Term::var(sym("x")))));
        assert!(p.entails(&Constraint::le(Term::var(sym("x")) - 4)));
        assert!(p.entails(&Constraint::le(Term::var(sym("y")) - 4)));
        // The point (0, 4) is NOT in the hull: the hull entails y <= x + 1.
        assert!(p.entails(&Constraint::le(
            Term::var(sym("y")) - Term::var(sym("x")) - 1
        )));
    }

    #[test]
    fn hull_with_empty_operand() {
        let p = poly("x >= 3");
        assert_eq!(hull_pair(&p, &Polyhedron::bottom()), p);
        assert_eq!(hull_pair(&Polyhedron::bottom(), &p), p);
    }

    #[test]
    fn convex_hull_of_disjunction() {
        let solver = Solver::new();
        let f = parse_formula("(x = 1 && y = 1) || (x = 3 && y = 3)").unwrap();
        let hull = convex_hull(&solver, &f);
        // The hull is the segment x = y, 1 <= x <= 3.
        assert!(hull.entails(&Constraint::eq(Term::var(sym("x")) - Term::var(sym("y")))));
        assert!(hull.entails(&Constraint::le(Term::constant(1) - Term::var(sym("x")))));
        assert!(hull.entails(&Constraint::le(Term::var(sym("x")) - 3)));
    }

    #[test]
    fn convex_hull_of_unsat_formula() {
        let solver = Solver::new();
        let f = parse_formula("x > 0 && x < 0").unwrap();
        assert!(convex_hull(&solver, &f).is_empty());
    }

    #[test]
    fn convex_hull_delta_example() {
        // The Δ-formula of the inner loop of Fig. 1: dm = 1, dn = -1, dstep = 0.
        let solver = Solver::new();
        let f = parse_formula("dm = 1 && dn = -1 && dstep = 0").unwrap();
        let hull = convex_hull(&solver, &f);
        assert!(hull.entails(&Constraint::eq(Term::var(sym("dm")) - 1)));
        assert!(hull.entails(&Constraint::eq(Term::var(sym("dn")) + 1)));
        assert!(hull.entails(&Constraint::eq(Term::var(sym("dstep")))));
    }

    #[test]
    fn affine_hull_of_line() {
        let solver = Solver::new();
        // Models lie on the line y = x + 1 (x unconstrained otherwise).
        let f = parse_formula("y = x + 1").unwrap();
        let hull = affine_hull(&solver, &f);
        assert!(hull.entails(&Constraint::eq(
            Term::var(sym("y")) - Term::var(sym("x")) - 1
        )));
        // Must not claim x is fixed.
        assert!(!hull.entails(&Constraint::eq(Term::var(sym("x")))));
    }

    #[test]
    fn affine_hull_of_full_space() {
        let solver = Solver::new();
        let f = parse_formula("x >= 0 || x <= 0").unwrap();
        let hull = affine_hull(&solver, &f);
        assert!(hull.is_top());
    }

    #[test]
    fn affine_hull_of_disjunction_of_points() {
        let solver = Solver::new();
        // {(0,0), (2,4)}: affine hull is the line y = 2x.
        let f = parse_formula("(x = 0 && y = 0) || (x = 2 && y = 4)").unwrap();
        let hull = affine_hull(&solver, &f);
        assert!(hull.entails(&Constraint::eq(
            Term::var(sym("y")) - Term::var(sym("x")).scale(2)
        )));
    }

    #[test]
    fn affine_hull_of_unsat() {
        let solver = Solver::new();
        let f = parse_formula("x = 1 && x = 2").unwrap();
        assert!(affine_hull(&solver, &f).is_empty());
    }
}
