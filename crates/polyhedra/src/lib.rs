//! Convex polyhedra, convex hulls and affine hulls of LIA formulas.
//!
//! This crate replaces the polyhedra library (Apron/NewPolka) that the
//! ComPACT implementation builds on.  It provides:
//!
//! * [`Polyhedron`] / [`Constraint`] — convex polyhedra in constraint form,
//!   with emptiness, entailment, redundancy removal and Fourier–Motzkin
//!   projection;
//! * [`hull_pair`] / [`convex_hull`] — convex hull of two polyhedra and
//!   `conv(F)` of a formula (§3.2 of the paper), used by the `(-)★` operator;
//! * [`affine_hull`] — the affine hull of a formula (`ρ_aff`, Appendix B),
//!   used as the closure operator of the inter-procedural summary iteration.
//!
//! # Examples
//!
//! ```
//! use compact_logic::parse_formula;
//! use compact_polyhedra::{convex_hull, Polyhedron};
//! use compact_smt::Solver;
//!
//! let solver = Solver::new();
//! let f = parse_formula("(x = 0 && y = 0) || (x = 2 && y = 2)").unwrap();
//! let hull = convex_hull(&solver, &f);
//! assert!(!hull.is_empty());
//! ```

#![warn(missing_docs)]

mod constraint;
mod hull;

pub use constraint::{Constraint, Polyhedron};
pub use hull::{affine_hull, convex_hull, hull_pair};
