//! Interpretation of (ω-)regular expressions in abstract algebras (§5).

use crate::{OmegaRegex, OmegaRegexNode, Regex, RegexNode};
use std::collections::HashMap;

/// A regular algebra `⟨A, 0, 1, +, ·, *⟩` (§5).
///
/// Implementations are the "safety half" of a program analysis: for the
/// termination analysis the carrier is transition formulas with disjunction,
/// relational composition and an over-approximate transitive closure.
pub trait RegularAlgebra {
    /// The carrier of the algebra.
    type Elem: Clone;

    /// The interpretation of the empty language.
    fn zero(&self) -> Self::Elem;
    /// The interpretation of the empty word.
    fn one(&self) -> Self::Elem;
    /// Choice.
    fn plus(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Sequencing.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Iteration.
    fn star(&self, a: &Self::Elem) -> Self::Elem;
}

/// An ω-algebra `⟨B, ·, +, ω⟩` over a regular algebra `A` (§5).
///
/// For the termination analysis the carrier is state formulas (mortal
/// preconditions), `·` is weakest precondition, `+` is conjunction and `ω` is
/// a mortal precondition operator.
pub trait OmegaAlgebra<A: RegularAlgebra> {
    /// The carrier of the ω-algebra.
    type Elem: Clone;

    /// ω-iteration of a regular element.
    fn omega(&self, a: &A::Elem) -> Self::Elem;
    /// Prefixing by a regular element.
    fn mul(&self, a: &A::Elem, b: &Self::Elem) -> Self::Elem;
    /// Choice.
    fn plus(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// The interpretation of the empty ω-language (the unit of `+`).
    fn zero(&self) -> Self::Elem;
}

/// An interpretation `⟨A, B, L⟩` over an alphabet (§5): a regular algebra, an
/// ω-algebra over it, and a semantic function mapping letters into the
/// regular algebra.
///
/// Evaluation is memoised per shared DAG node, so evaluating a path
/// expression of `n` distinct nodes costs `O(n)` algebra operations as
/// claimed in §5.
pub struct Interpretation<'a, L, A, B>
where
    A: RegularAlgebra,
    B: OmegaAlgebra<A>,
{
    regular: &'a A,
    omega: &'a B,
    semantic: Box<dyn Fn(&L) -> A::Elem + 'a>,
}

impl<'a, L, A, B> Interpretation<'a, L, A, B>
where
    A: RegularAlgebra,
    B: OmegaAlgebra<A>,
{
    /// Creates an interpretation from the two algebras and the semantic
    /// function.
    pub fn new(
        regular: &'a A,
        omega: &'a B,
        semantic: impl Fn(&L) -> A::Elem + 'a,
    ) -> Interpretation<'a, L, A, B> {
        Interpretation { regular, omega, semantic: Box::new(semantic) }
    }

    /// The regular algebra.
    pub fn regular_algebra(&self) -> &A {
        self.regular
    }

    /// The ω-algebra.
    pub fn omega_algebra(&self) -> &B {
        self.omega
    }

    /// Evaluates a regular expression in the regular algebra.
    pub fn eval(&self, e: &Regex<L>) -> A::Elem {
        let mut memo: HashMap<usize, A::Elem> = HashMap::new();
        self.eval_memo(e, &mut memo)
    }

    fn eval_memo(&self, e: &Regex<L>, memo: &mut HashMap<usize, A::Elem>) -> A::Elem {
        if let Some(v) = memo.get(&e.id()) {
            return v.clone();
        }
        let value = match e.node() {
            RegexNode::Zero => self.regular.zero(),
            RegexNode::One => self.regular.one(),
            RegexNode::Letter(l) => (self.semantic)(l),
            RegexNode::Plus(a, b) => {
                let va = self.eval_memo(a, memo);
                let vb = self.eval_memo(b, memo);
                self.regular.plus(&va, &vb)
            }
            RegexNode::Cat(a, b) => {
                let va = self.eval_memo(a, memo);
                let vb = self.eval_memo(b, memo);
                self.regular.mul(&va, &vb)
            }
            RegexNode::Star(a) => {
                let va = self.eval_memo(a, memo);
                self.regular.star(&va)
            }
        };
        memo.insert(e.id(), value.clone());
        value
    }

    /// Evaluates an ω-regular expression in the ω-algebra.
    pub fn eval_omega(&self, f: &OmegaRegex<L>) -> B::Elem {
        let mut regular_memo: HashMap<usize, A::Elem> = HashMap::new();
        let mut omega_memo: HashMap<usize, B::Elem> = HashMap::new();
        self.eval_omega_memo(f, &mut regular_memo, &mut omega_memo)
    }

    fn eval_omega_memo(
        &self,
        f: &OmegaRegex<L>,
        regular_memo: &mut HashMap<usize, A::Elem>,
        omega_memo: &mut HashMap<usize, B::Elem>,
    ) -> B::Elem {
        if let Some(v) = omega_memo.get(&f.id()) {
            return v.clone();
        }
        let value = match f.node() {
            OmegaRegexNode::Zero => self.omega.zero(),
            OmegaRegexNode::Omega(e) => {
                let ve = self.eval_memo(e, regular_memo);
                self.omega.omega(&ve)
            }
            OmegaRegexNode::Cat(e, g) => {
                let ve = self.eval_memo(e, regular_memo);
                let vg = self.eval_omega_memo(g, regular_memo, omega_memo);
                self.omega.mul(&ve, &vg)
            }
            OmegaRegexNode::Plus(a, b) => {
                let va = self.eval_omega_memo(a, regular_memo, omega_memo);
                let vb = self.eval_omega_memo(b, regular_memo, omega_memo);
                self.omega.plus(&va, &vb)
            }
        };
        omega_memo.insert(f.id(), value.clone());
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// The "language size up to bound" test algebra: counts the number of
    /// words of length at most 2 (a crude finite abstraction, good enough to
    /// test the plumbing and memoisation).
    struct CountAlgebra {
        ops: Cell<usize>,
    }

    impl RegularAlgebra for CountAlgebra {
        type Elem = usize;
        fn zero(&self) -> usize {
            0
        }
        fn one(&self) -> usize {
            1
        }
        fn plus(&self, a: &usize, b: &usize) -> usize {
            self.ops.set(self.ops.get() + 1);
            a + b
        }
        fn mul(&self, a: &usize, b: &usize) -> usize {
            self.ops.set(self.ops.get() + 1);
            a * b
        }
        fn star(&self, a: &usize) -> usize {
            self.ops.set(self.ops.get() + 1);
            1 + a
        }
    }

    struct TrivialOmega;

    impl OmegaAlgebra<CountAlgebra> for TrivialOmega {
        type Elem = usize;
        fn omega(&self, a: &usize) -> usize {
            *a
        }
        fn mul(&self, a: &usize, b: &usize) -> usize {
            a * b
        }
        fn plus(&self, a: &usize, b: &usize) -> usize {
            a + b
        }
        fn zero(&self) -> usize {
            0
        }
    }

    #[test]
    fn evaluation_follows_structure() {
        let algebra = CountAlgebra { ops: Cell::new(0) };
        let omega = TrivialOmega;
        let interp = Interpretation::new(&algebra, &omega, |_: &char| 1usize);
        // (a + b) c
        let e = Regex::cat(
            Regex::plus(Regex::letter('a'), Regex::letter('b')),
            Regex::letter('c'),
        );
        assert_eq!(interp.eval(&e), 2);
        // a^w + (a + b)^w
        let f = OmegaRegex::plus(
            OmegaRegex::omega(Regex::letter('a')),
            OmegaRegex::omega(Regex::plus(Regex::letter('a'), Regex::letter('b'))),
        );
        assert_eq!(interp.eval_omega(&f), 3);
    }

    #[test]
    fn memoisation_shares_nodes() {
        let algebra = CountAlgebra { ops: Cell::new(0) };
        let omega = TrivialOmega;
        let interp = Interpretation::new(&algebra, &omega, |_: &char| 1usize);
        // Build a DAG where `inner` is shared by both operands of a plus.
        let inner = Regex::cat(Regex::letter('a'), Regex::letter('b'));
        let shared = Regex::plus(
            Regex::cat(inner.clone(), Regex::letter('c')),
            Regex::cat(inner.clone(), Regex::letter('d')),
        );
        let _ = interp.eval(&shared);
        // `inner` is evaluated only once: 1 (inner cat) + 2 (outer cats) + 1
        // (plus) = 4 operations, not 5.
        assert_eq!(algebra.ops.get(), 4);
    }
}
