//! Convenience constructors for regular expressions.

use crate::Regex;

/// A small helper for building regular expressions from iterators of letters
/// or sub-expressions.
///
/// # Examples
///
/// ```
/// use compact_regex::RegexBuilder;
/// let e = RegexBuilder::word(['a', 'b', 'c']);
/// assert_eq!(e.to_string(), "abc");
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct RegexBuilder;

impl RegexBuilder {
    /// The concatenation of the given letters (the empty word for an empty
    /// iterator).
    pub fn word<L: Clone>(letters: impl IntoIterator<Item = L>) -> Regex<L> {
        letters
            .into_iter()
            .map(Regex::letter)
            .fold(Regex::one(), Regex::cat)
    }

    /// The union of the given expressions (the empty language for an empty
    /// iterator).
    pub fn choice<L: Clone>(exprs: impl IntoIterator<Item = Regex<L>>) -> Regex<L> {
        exprs.into_iter().fold(Regex::zero(), Regex::plus)
    }

    /// The concatenation of the given expressions (the empty word for an
    /// empty iterator).
    pub fn concat_all<L: Clone>(exprs: impl IntoIterator<Item = Regex<L>>) -> Regex<L> {
        exprs.into_iter().fold(Regex::one(), Regex::cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_words;

    #[test]
    fn word_builds_concatenation() {
        let e = RegexBuilder::word([1, 2, 3]);
        let words = enumerate_words(&e, 5);
        assert!(words.contains(&vec![1, 2, 3]));
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn choice_builds_union() {
        let e = RegexBuilder::choice([RegexBuilder::word([1]), RegexBuilder::word([2, 3])]);
        let words = enumerate_words(&e, 5);
        assert_eq!(words.len(), 2);
        assert!(words.contains(&vec![1]));
        assert!(words.contains(&vec![2, 3]));
    }

    #[test]
    fn empty_iterators() {
        let w: Regex<char> = RegexBuilder::word(std::iter::empty());
        assert!(w.is_one());
        let c: Regex<char> = RegexBuilder::choice(std::iter::empty());
        assert!(c.is_zero());
        let a: Regex<char> = RegexBuilder::concat_all(std::iter::empty());
        assert!(a.is_one());
    }
}
