//! Regular and ω-regular expression syntax.

use std::fmt;
use std::rc::Rc;

/// A node of a regular expression over letters of type `L`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RegexNode<L> {
    /// The empty language `0`.
    Zero,
    /// The language containing only the empty word, `1`.
    One,
    /// A single letter.
    Letter(L),
    /// Union `e₁ + e₂`.
    Plus(Regex<L>, Regex<L>),
    /// Concatenation `e₁ · e₂`.
    Cat(Regex<L>, Regex<L>),
    /// Kleene star `e*`.
    Star(Regex<L>),
}

/// A regular expression, reference-counted so that Tarjan's path-expression
/// algorithm can share sub-expressions and interpretations can be memoised
/// per shared node (§2, "the expression can be represented efficiently as a
/// DAG").
///
/// # Examples
///
/// ```
/// use compact_regex::Regex;
/// let e = Regex::cat(Regex::letter('a'), Regex::star(Regex::letter('b')));
/// assert_eq!(e.to_string(), "a(b)*");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Regex<L>(Rc<RegexNode<L>>);

impl<L> Regex<L> {
    /// The empty language.
    pub fn zero() -> Regex<L> {
        Regex(Rc::new(RegexNode::Zero))
    }

    /// The empty word.
    pub fn one() -> Regex<L> {
        Regex(Rc::new(RegexNode::One))
    }

    /// A single letter.
    pub fn letter(l: L) -> Regex<L> {
        Regex(Rc::new(RegexNode::Letter(l)))
    }

    /// Union, with `0` as the unit.
    pub fn plus(a: Regex<L>, b: Regex<L>) -> Regex<L> {
        match (a.node(), b.node()) {
            (RegexNode::Zero, _) => b,
            (_, RegexNode::Zero) => a,
            _ => Regex(Rc::new(RegexNode::Plus(a, b))),
        }
    }

    /// Concatenation, with `1` as the unit and `0` as the zero.
    pub fn cat(a: Regex<L>, b: Regex<L>) -> Regex<L> {
        match (a.node(), b.node()) {
            (RegexNode::Zero, _) | (_, RegexNode::Zero) => Regex::zero(),
            (RegexNode::One, _) => b,
            (_, RegexNode::One) => a,
            _ => Regex(Rc::new(RegexNode::Cat(a, b))),
        }
    }

    /// Kleene star (with `0* = 1* = 1` and `(e*)* = e*`).
    pub fn star(a: Regex<L>) -> Regex<L> {
        match a.node() {
            RegexNode::Zero | RegexNode::One => Regex::one(),
            RegexNode::Star(_) => a,
            _ => Regex(Rc::new(RegexNode::Star(a))),
        }
    }

    /// The underlying node.
    pub fn node(&self) -> &RegexNode<L> {
        &self.0
    }

    /// A stable identifier for this shared node (used for memoisation).
    pub fn id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// Returns `true` if this is syntactically the empty language.
    pub fn is_zero(&self) -> bool {
        matches!(self.node(), RegexNode::Zero)
    }

    /// Returns `true` if this is syntactically the empty word.
    pub fn is_one(&self) -> bool {
        matches!(self.node(), RegexNode::One)
    }

    /// The number of distinct nodes in the DAG rooted at this expression.
    pub fn dag_size(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk<L>(e: &Regex<L>, seen: &mut std::collections::HashSet<usize>) {
            if !seen.insert(e.id()) {
                return;
            }
            match e.node() {
                RegexNode::Zero | RegexNode::One | RegexNode::Letter(_) => {}
                RegexNode::Plus(a, b) | RegexNode::Cat(a, b) => {
                    walk(a, seen);
                    walk(b, seen);
                }
                RegexNode::Star(a) => walk(a, seen),
            }
        }
        walk(self, &mut seen);
        seen.len()
    }

    /// The number of nodes counted as a tree (no sharing).
    pub fn tree_size(&self) -> usize {
        match self.node() {
            RegexNode::Zero | RegexNode::One | RegexNode::Letter(_) => 1,
            RegexNode::Plus(a, b) | RegexNode::Cat(a, b) => 1 + a.tree_size() + b.tree_size(),
            RegexNode::Star(a) => 1 + a.tree_size(),
        }
    }

    /// The letters occurring in the expression.
    pub fn letters(&self) -> Vec<L>
    where
        L: Clone + PartialEq,
    {
        let mut out = Vec::new();
        fn walk<L: Clone + PartialEq>(e: &Regex<L>, out: &mut Vec<L>) {
            match e.node() {
                RegexNode::Letter(l) => {
                    if !out.contains(l) {
                        out.push(l.clone());
                    }
                }
                RegexNode::Zero | RegexNode::One => {}
                RegexNode::Plus(a, b) | RegexNode::Cat(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                RegexNode::Star(a) => walk(a, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

impl<L: fmt::Display + Clone> fmt::Display for Regex<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            RegexNode::Zero => write!(f, "0"),
            RegexNode::One => write!(f, "1"),
            RegexNode::Letter(l) => write!(f, "{}", l),
            RegexNode::Plus(a, b) => write!(f, "({} + {})", a, b),
            RegexNode::Cat(a, b) => write!(f, "{}{}", a, b),
            RegexNode::Star(a) => match a.node() {
                RegexNode::Letter(_) => write!(f, "({})*", a),
                _ => write!(f, "({})*", a),
            },
        }
    }
}

/// A node of an ω-regular expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum OmegaRegexNode<L> {
    /// The empty ω-language.
    Zero,
    /// Infinite repetition `e^ω`.
    Omega(Regex<L>),
    /// Prefixing `e · f`.
    Cat(Regex<L>, OmegaRegex<L>),
    /// Union `f₁ + f₂`.
    Plus(OmegaRegex<L>, OmegaRegex<L>),
}

/// An ω-regular expression, recognizing a set of infinite words.
///
/// # Examples
///
/// ```
/// use compact_regex::{OmegaRegex, Regex};
/// let loop_forever = OmegaRegex::omega(Regex::letter("body"));
/// let f = OmegaRegex::cat(Regex::letter("init"), loop_forever);
/// assert_eq!(f.to_string(), "init(body)^w");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OmegaRegex<L>(Rc<OmegaRegexNode<L>>);

impl<L> OmegaRegex<L> {
    /// The empty ω-language.
    pub fn zero() -> OmegaRegex<L> {
        OmegaRegex(Rc::new(OmegaRegexNode::Zero))
    }

    /// Infinite repetition of a regular expression.  `0^ω` is empty.
    pub fn omega(e: Regex<L>) -> OmegaRegex<L> {
        if e.is_zero() || e.is_one() {
            // `1^ω` contains only the empty "infinite" word, which is not an
            // infinite path; treat it as empty like `0^ω`.
            return OmegaRegex::zero();
        }
        OmegaRegex(Rc::new(OmegaRegexNode::Omega(e)))
    }

    /// Prefixes an ω-language with a regular language.
    pub fn cat(e: Regex<L>, f: OmegaRegex<L>) -> OmegaRegex<L> {
        if e.is_zero() || f.is_zero() {
            return OmegaRegex::zero();
        }
        if e.is_one() {
            return f;
        }
        OmegaRegex(Rc::new(OmegaRegexNode::Cat(e, f)))
    }

    /// Union of ω-languages, with the empty language as the unit.
    pub fn plus(a: OmegaRegex<L>, b: OmegaRegex<L>) -> OmegaRegex<L> {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        OmegaRegex(Rc::new(OmegaRegexNode::Plus(a, b)))
    }

    /// The underlying node.
    pub fn node(&self) -> &OmegaRegexNode<L> {
        &self.0
    }

    /// A stable identifier for this shared node (used for memoisation).
    pub fn id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// Returns `true` if this is syntactically the empty ω-language.
    pub fn is_zero(&self) -> bool {
        matches!(self.node(), OmegaRegexNode::Zero)
    }

    /// The number of distinct ω-nodes in the DAG (regular sub-expressions are
    /// not counted).
    pub fn dag_size(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk<L>(e: &OmegaRegex<L>, seen: &mut std::collections::HashSet<usize>) {
            if !seen.insert(e.id()) {
                return;
            }
            match e.node() {
                OmegaRegexNode::Zero | OmegaRegexNode::Omega(_) => {}
                OmegaRegexNode::Cat(_, f) => walk(f, seen),
                OmegaRegexNode::Plus(a, b) => {
                    walk(a, seen);
                    walk(b, seen);
                }
            }
        }
        walk(self, &mut seen);
        seen.len()
    }
}

impl<L: fmt::Display + Clone> fmt::Display for OmegaRegex<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            OmegaRegexNode::Zero => write!(f, "0^w"),
            OmegaRegexNode::Omega(e) => write!(f, "({})^w", e),
            OmegaRegexNode::Cat(e, g) => write!(f, "{}{}", e, g),
            OmegaRegexNode::Plus(a, b) => write!(f, "({} + {})", a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_smart_constructors() {
        let a = Regex::letter('a');
        let b = Regex::letter('b');
        assert_eq!(Regex::plus(Regex::zero(), a.clone()), a);
        assert_eq!(Regex::plus(a.clone(), Regex::zero()), a);
        assert!(Regex::cat(Regex::zero(), a.clone()).is_zero());
        assert_eq!(Regex::cat(Regex::one(), b.clone()), b);
        assert_eq!(Regex::cat(b.clone(), Regex::one()), b);
        assert!(Regex::star(Regex::<char>::zero()).is_one());
        assert!(Regex::star(Regex::<char>::one()).is_one());
        let s = Regex::star(a.clone());
        assert_eq!(Regex::star(s.clone()), s);
    }

    #[test]
    fn omega_smart_constructors() {
        let a = Regex::letter('a');
        let w = OmegaRegex::omega(a.clone());
        assert!(OmegaRegex::omega(Regex::<char>::zero()).is_zero());
        assert!(OmegaRegex::cat(Regex::zero(), w.clone()).is_zero());
        assert_eq!(OmegaRegex::cat(Regex::one(), w.clone()), w);
        assert_eq!(OmegaRegex::plus(OmegaRegex::zero(), w.clone()), w);
        assert_eq!(OmegaRegex::plus(w.clone(), OmegaRegex::zero()), w);
    }

    #[test]
    fn sharing_is_visible_in_dag_size() {
        let a = Regex::letter('a');
        let inner = Regex::cat(a.clone(), a.clone());
        let shared = Regex::plus(inner.clone(), Regex::star(inner.clone()));
        // Tree size counts `inner` twice, DAG size once.
        assert!(shared.dag_size() < shared.tree_size());
    }

    #[test]
    fn display_forms() {
        let a = Regex::letter('a');
        let b = Regex::letter('b');
        let e = Regex::cat(a.clone(), Regex::star(b.clone()));
        assert_eq!(e.to_string(), "a(b)*");
        let f = OmegaRegex::cat(a, OmegaRegex::omega(b));
        assert_eq!(f.to_string(), "a(b)^w");
    }

    #[test]
    fn letters_collects_unique_letters() {
        let e = Regex::cat(
            Regex::letter(1),
            Regex::plus(Regex::letter(2), Regex::star(Regex::letter(1))),
        );
        let mut ls = e.letters();
        ls.sort();
        assert_eq!(ls, vec![1, 2]);
    }
}
