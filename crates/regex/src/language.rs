//! Bounded language enumeration, used to test that path expressions
//! recognize exactly the paths of a graph.

use crate::{OmegaRegex, OmegaRegexNode, Regex, RegexNode};
use std::collections::BTreeSet;

/// Enumerates every word of length at most `max_len` recognized by the
/// regular expression.
///
/// This is exponential in general and intended only for testing on small
/// expressions.
pub fn enumerate_words<L: Clone + Ord>(e: &Regex<L>, max_len: usize) -> BTreeSet<Vec<L>> {
    match e.node() {
        RegexNode::Zero => BTreeSet::new(),
        RegexNode::One => [Vec::new()].into_iter().collect(),
        RegexNode::Letter(l) => {
            if max_len == 0 {
                BTreeSet::new()
            } else {
                [vec![l.clone()]].into_iter().collect()
            }
        }
        RegexNode::Plus(a, b) => {
            let mut out = enumerate_words(a, max_len);
            out.extend(enumerate_words(b, max_len));
            out
        }
        RegexNode::Cat(a, b) => {
            let left = enumerate_words(a, max_len);
            let right = enumerate_words(b, max_len);
            let mut out = BTreeSet::new();
            for l in &left {
                for r in &right {
                    if l.len() + r.len() <= max_len {
                        let mut w = l.clone();
                        w.extend(r.iter().cloned());
                        out.insert(w);
                    }
                }
            }
            out
        }
        RegexNode::Star(a) => {
            let base = enumerate_words(a, max_len);
            let mut out: BTreeSet<Vec<L>> = [Vec::new()].into_iter().collect();
            // Repeatedly append words of `a` until saturation.
            loop {
                let mut added = false;
                let snapshot: Vec<Vec<L>> = out.iter().cloned().collect();
                for w in &snapshot {
                    for b in &base {
                        if b.is_empty() {
                            continue;
                        }
                        if w.len() + b.len() <= max_len {
                            let mut nw = w.clone();
                            nw.extend(b.iter().cloned());
                            if out.insert(nw) {
                                added = true;
                            }
                        }
                    }
                }
                if !added {
                    return out;
                }
            }
        }
    }
}

/// Enumerates every *prefix* of length at most `max_len` of the words
/// recognized by the expression (including prefixes of words longer than
/// `max_len`).
pub fn prefix_words<L: Clone + Ord>(e: &Regex<L>, max_len: usize) -> BTreeSet<Vec<L>> {
    match e.node() {
        RegexNode::Zero => BTreeSet::new(),
        RegexNode::One => [Vec::new()].into_iter().collect(),
        RegexNode::Letter(l) => {
            let mut out: BTreeSet<Vec<L>> = [Vec::new()].into_iter().collect();
            if max_len >= 1 {
                out.insert(vec![l.clone()]);
            }
            out
        }
        RegexNode::Plus(a, b) => {
            let mut out = prefix_words(a, max_len);
            out.extend(prefix_words(b, max_len));
            out
        }
        RegexNode::Cat(a, b) => {
            // Either a prefix of `a`, or a full word of `a` followed by a
            // prefix of `b` (only valid when `b` recognizes some word, which
            // it always does unless it is empty — handled by recursion
            // returning an empty set).
            let mut out = BTreeSet::new();
            let b_prefixes_nonempty = !prefix_words(b, 0).is_empty();
            if b_prefixes_nonempty {
                out.extend(prefix_words(a, max_len));
            }
            for u in enumerate_words(a, max_len) {
                for v in prefix_words(b, max_len - u.len()) {
                    let mut w = u.clone();
                    w.extend(v);
                    out.insert(w);
                }
            }
            out
        }
        RegexNode::Star(a) => {
            let mut out = BTreeSet::new();
            for u in enumerate_words(&Regex::star(a.clone()), max_len) {
                out.insert(u.clone());
                for v in prefix_words(a, max_len - u.len()) {
                    let mut w = u.clone();
                    w.extend(v);
                    out.insert(w);
                }
            }
            out
        }
    }
}

/// Returns `true` if the regular expression recognizes at least one word
/// containing at least one letter.
fn has_nonempty_word<L: Clone>(e: &Regex<L>) -> bool {
    match e.node() {
        RegexNode::Zero | RegexNode::One => false,
        RegexNode::Letter(_) => true,
        RegexNode::Plus(a, b) => has_nonempty_word(a) || has_nonempty_word(b),
        RegexNode::Cat(a, b) => {
            (has_nonempty_word(a) && recognizes_some_word(b))
                || (recognizes_some_word(a) && has_nonempty_word(b))
        }
        RegexNode::Star(a) => has_nonempty_word(a),
    }
}

/// Returns `true` if the regular expression recognizes at least one word
/// (possibly empty).
fn recognizes_some_word<L: Clone>(e: &Regex<L>) -> bool {
    match e.node() {
        RegexNode::Zero => false,
        RegexNode::One | RegexNode::Letter(_) | RegexNode::Star(_) => true,
        RegexNode::Plus(a, b) => recognizes_some_word(a) || recognizes_some_word(b),
        RegexNode::Cat(a, b) => recognizes_some_word(a) && recognizes_some_word(b),
    }
}

/// Returns `true` if the ω-regular expression recognizes at least one
/// infinite word.
pub fn omega_nonempty<L: Clone>(f: &OmegaRegex<L>) -> bool {
    match f.node() {
        OmegaRegexNode::Zero => false,
        OmegaRegexNode::Omega(e) => has_nonempty_word(e),
        OmegaRegexNode::Cat(e, g) => recognizes_some_word(e) && omega_nonempty(g),
        OmegaRegexNode::Plus(a, b) => omega_nonempty(a) || omega_nonempty(b),
    }
}

/// Enumerates every prefix of length exactly `len` of the infinite words
/// recognized by the ω-regular expression.
///
/// Like [`enumerate_words`], this is a testing utility.
pub fn omega_prefix_words<L: Clone + Ord>(f: &OmegaRegex<L>, len: usize) -> BTreeSet<Vec<L>> {
    match f.node() {
        OmegaRegexNode::Zero => BTreeSet::new(),
        OmegaRegexNode::Omega(e) => {
            if !has_nonempty_word(e) {
                return BTreeSet::new();
            }
            // Words of e^ω restricted to length `len`: concatenations of
            // words of e, ending with a prefix of a word of e, of total
            // length exactly `len`.
            let words = enumerate_words(e, len);
            let prefixes = prefix_words(e, len);
            let mut out = BTreeSet::new();
            let mut frontier: BTreeSet<Vec<L>> = [Vec::new()].into_iter().collect();
            let mut seen: BTreeSet<Vec<L>> = frontier.clone();
            while let Some(w) = frontier.iter().next().cloned() {
                frontier.remove(&w);
                // Complete the current concatenation with a prefix.
                for p in &prefixes {
                    if w.len() + p.len() == len {
                        let mut full = w.clone();
                        full.extend(p.iter().cloned());
                        out.insert(full);
                    }
                }
                // Extend with another full word of e.
                for word in &words {
                    if word.is_empty() || w.len() + word.len() > len {
                        continue;
                    }
                    let mut nw = w.clone();
                    nw.extend(word.iter().cloned());
                    if seen.insert(nw.clone()) {
                        frontier.insert(nw);
                    }
                }
            }
            out
        }
        OmegaRegexNode::Cat(e, g) => {
            let mut out = BTreeSet::new();
            if !omega_nonempty(g) {
                return out;
            }
            // Full word of e followed by a prefix of g.
            for u in enumerate_words(e, len) {
                for r in omega_prefix_words(g, len - u.len()) {
                    let mut w = u.clone();
                    w.extend(r);
                    out.insert(w);
                }
            }
            // Or a length-`len` prefix of a (possibly longer) word of e.
            for p in prefix_words(e, len) {
                if p.len() == len {
                    out.insert(p);
                }
            }
            out
        }
        OmegaRegexNode::Plus(a, b) => {
            let mut out = omega_prefix_words(a, len);
            out.extend(omega_prefix_words(b, len));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_of_simple_expressions() {
        let e = Regex::cat(
            Regex::letter('a'),
            Regex::star(Regex::plus(Regex::letter('b'), Regex::letter('c'))),
        );
        let words = enumerate_words(&e, 2);
        assert!(words.contains(&vec!['a']));
        assert!(words.contains(&vec!['a', 'b']));
        assert!(words.contains(&vec!['a', 'c']));
        assert!(!words.contains(&vec!['b']));
        assert_eq!(words.len(), 3);
    }

    #[test]
    fn star_generates_repetitions() {
        let e = Regex::star(Regex::letter('x'));
        let words = enumerate_words(&e, 3);
        assert_eq!(words.len(), 4); // "", x, xx, xxx
    }

    #[test]
    fn prefixes_cut_long_words() {
        // abc has prefixes "", a, ab (and abc) up to length 2: "", a, ab.
        let e = Regex::cat(
            Regex::cat(Regex::letter('a'), Regex::letter('b')),
            Regex::letter('c'),
        );
        let p = prefix_words(&e, 2);
        assert!(p.contains(&vec![]));
        assert!(p.contains(&vec!['a']));
        assert!(p.contains(&vec!['a', 'b']));
        assert_eq!(p.len(), 3);
        // A zero branch contributes no prefixes.
        let z = Regex::cat(Regex::letter('a'), Regex::zero());
        assert!(prefix_words(&z, 3).is_empty());
    }

    #[test]
    fn omega_prefixes() {
        // (ab)^ω has prefixes a, ab, aba, abab, ...
        let e = Regex::cat(Regex::letter('a'), Regex::letter('b'));
        let f = OmegaRegex::omega(e);
        let p3 = omega_prefix_words(&f, 3);
        assert_eq!(p3, [vec!['a', 'b', 'a']].into_iter().collect());
        let p0 = omega_prefix_words(&f, 0);
        assert_eq!(p0.len(), 1);
        assert!(omega_nonempty(&f));
    }

    #[test]
    fn omega_prefix_cuts_into_finite_part() {
        // (a + bc) d^ω : prefixes of length 1 are {a, b}.
        let f = OmegaRegex::cat(
            Regex::plus(
                Regex::letter('a'),
                Regex::cat(Regex::letter('b'), Regex::letter('c')),
            ),
            OmegaRegex::omega(Regex::letter('d')),
        );
        let p1 = omega_prefix_words(&f, 1);
        assert_eq!(p1, [vec!['a'], vec!['b']].into_iter().collect());
        let p3 = omega_prefix_words(&f, 3);
        assert!(p3.contains(&vec!['a', 'd', 'd']));
        assert!(p3.contains(&vec!['b', 'c', 'd']));
        assert_eq!(p3.len(), 2);
    }

    #[test]
    fn omega_choice_and_prefixing() {
        // a (b^ω + c^ω)
        let f = OmegaRegex::cat(
            Regex::letter('a'),
            OmegaRegex::plus(
                OmegaRegex::omega(Regex::letter('b')),
                OmegaRegex::omega(Regex::letter('c')),
            ),
        );
        let p2 = omega_prefix_words(&f, 2);
        assert!(p2.contains(&vec!['a', 'b']));
        assert!(p2.contains(&vec!['a', 'c']));
        assert_eq!(p2.len(), 2);
    }

    #[test]
    fn empty_omega_language_has_no_prefixes() {
        let f: OmegaRegex<char> = OmegaRegex::zero();
        assert!(omega_prefix_words(&f, 2).is_empty());
        assert!(!omega_nonempty(&f));
        // e^ω where e recognizes only the empty word is also empty.
        let g = OmegaRegex::cat(Regex::letter('a'), OmegaRegex::omega(Regex::star(Regex::zero())));
        assert!(omega_prefix_words(&g, 1).is_empty());
    }
}
