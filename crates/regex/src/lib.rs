//! Regular and ω-regular expressions with interpretation algebras.
//!
//! This crate implements the syntactic side of algebraic program analysis
//! (§3.1 and §5 of *"Termination Analysis without the Tears"*):
//!
//! * [`Regex`] — regular expressions over an arbitrary alphabet, built as a
//!   hash-consed DAG so that shared sub-expressions are represented once;
//! * [`OmegaRegex`] — ω-regular expressions (`e^ω`, `e·f`, `f₁ + f₂`);
//! * [`RegularAlgebra`] / [`OmegaAlgebra`] — the interpretation interface of
//!   §5: a regular algebra has `0`, `1`, `+`, `·`, `*`; an ω-algebra over it
//!   has `·`, `+`, and `ω`;
//! * [`Interpretation`] — memoised bottom-up evaluation of (ω-)regular
//!   expressions within a pair of algebras (the "Step 2" of §2).
//!
//! The concrete algebras used by the termination analysis (transition
//! formulas and mortal preconditions) live in `compact-tf`.

#![warn(missing_docs)]

mod algebra;
mod builder;
mod expr;
mod language;

pub use algebra::{Interpretation, OmegaAlgebra, RegularAlgebra};
pub use builder::RegexBuilder;
pub use expr::{OmegaRegex, OmegaRegexNode, Regex, RegexNode};
pub use language::{enumerate_words, omega_nonempty, omega_prefix_words, prefix_words};
