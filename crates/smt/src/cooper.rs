//! Cooper's quantifier elimination procedure for Presburger arithmetic.
//!
//! Given a formula of linear integer arithmetic, [`eliminate_quantifiers`]
//! produces an equivalent quantifier-free formula.  The procedure is the
//! classic one (Cooper 1972): normalize the coefficient of the eliminated
//! variable, then replace the existential by a finite disjunction over the
//! "small" solutions `F_{-∞}(j)` and the solutions just above a lower bound
//! `F(b + j)`.
//!
//! Quantifier elimination is the engine behind the `mpexp` operator (§6.1 of
//! the paper), the `Pre`/`Post` projections of the `(-)★` operator (§3.3) and
//! weakest-precondition validity checks.

use compact_arith::Int;
use compact_logic::{Atom, Formula, Symbol, Term};
use std::collections::BTreeMap;

/// Eliminates every quantifier of a formula, returning an equivalent
/// quantifier-free formula.
///
/// # Examples
///
/// ```
/// use compact_logic::parse_formula;
/// use compact_smt::eliminate_quantifiers;
/// let f = parse_formula("exists k. k >= 0 && x = 2*k").unwrap();
/// let g = eliminate_quantifiers(&f);
/// assert!(g.is_quantifier_free());
/// ```
pub fn eliminate_quantifiers(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::And(parts) => {
            Formula::and(parts.iter().map(eliminate_quantifiers).collect())
        }
        Formula::Or(parts) => Formula::or(parts.iter().map(eliminate_quantifiers).collect()),
        Formula::Not(inner) => Formula::not(eliminate_quantifiers(inner)),
        Formula::Exists(vars, body) => {
            let mut result = eliminate_quantifiers(body);
            // Eliminate the innermost variable first.
            for v in vars.iter().rev() {
                result = eliminate_exists(*v, &result);
            }
            result
        }
        Formula::Forall(vars, body) => {
            let negated = Formula::not((**body).clone());
            let mut result = eliminate_quantifiers(&negated);
            for v in vars.iter().rev() {
                result = eliminate_exists(*v, &result);
            }
            Formula::not(result)
        }
    }
}

/// Eliminates a single existential quantifier `∃x. f` where `f` is
/// quantifier-free.
///
/// # Panics
///
/// Panics if `f` contains quantifiers.
pub fn eliminate_exists(x: Symbol, f: &Formula) -> Formula {
    assert!(f.is_quantifier_free(), "eliminate_exists requires a quantifier-free body");
    let f = prepare(x, &f.nnf());
    if !f.free_vars().contains(&x) {
        return f;
    }

    // Compute m = lcm of |coefficient of x| over atoms containing x.
    let mut m = Int::one();
    for atom in f.atoms() {
        let c = atom.term().coeff(&x);
        if !c.is_zero() {
            m = m.lcm(&c.abs());
        }
    }

    // Scale every atom containing x so that the coefficient of x is ±m, then
    // replace m·x by a fresh variable y (adding m | y).
    let y = Symbol::fresh(&format!("{}#cooper", x.name()));
    let scaled = map_atoms(&f, &mut |atom| {
        let c = atom.term().coeff(&x);
        if c.is_zero() {
            return Formula::atom(atom.clone());
        }
        let k = &m / &c.abs();
        let atom = match atom {
            Atom::Le(t) => Atom::Le(t.scale(k.clone())),
            Atom::Divides(d, t) => Atom::Divides(d * &k, t.scale(k.clone())),
            Atom::NotDivides(d, t) => Atom::NotDivides(d * &k, t.scale(k.clone())),
            Atom::Eq(_) | Atom::Neq(_) => unreachable!("rewritten by prepare"),
        };
        // Replace (±m)·x with (±1)·y.
        let t = atom.term();
        let (coeff_mx, rest) = t.split_var(&x);
        debug_assert!(coeff_mx.abs() == m);
        let sign = if coeff_mx.is_positive() { 1i64 } else { -1 };
        let new_term = rest + Term::var(y) * sign;
        Formula::atom(match atom {
            Atom::Le(_) => Atom::Le(new_term),
            Atom::Divides(d, _) => Atom::Divides(d, new_term),
            Atom::NotDivides(d, _) => Atom::NotDivides(d, new_term),
            Atom::Eq(_) | Atom::Neq(_) => unreachable!(),
        })
    });
    let g = if m.is_one() {
        scaled
    } else {
        Formula::and(vec![scaled, Formula::atom(Atom::Divides(m.clone(), Term::var(y)))])
    };

    // δ = lcm of divisibility moduli mentioning y.
    let mut delta = Int::one();
    for atom in g.atoms() {
        match atom {
            Atom::Divides(d, t) | Atom::NotDivides(d, t) => {
                if t.contains_var(&y) {
                    delta = delta.lcm(d);
                }
            }
            _ => {}
        }
    }

    // Lower-bound terms: atoms  -y + t <= 0  (y >= t), strict bound b = t - 1.
    let mut lower_bounds: Vec<Term> = Vec::new();
    for atom in g.atoms() {
        if let Atom::Le(t) = atom {
            let c = t.coeff(&y);
            if c == Int::from(-1) {
                let (_, rest) = t.split_var(&y);
                let b = rest - 1;
                if !lower_bounds.contains(&b) {
                    lower_bounds.push(b);
                }
            }
        }
    }

    // F_{-∞}: upper bounds become true, lower bounds become false.
    let minus_infinity = map_atoms(&g, &mut |atom| {
        if let Atom::Le(t) = atom {
            let c = t.coeff(&y);
            if c.is_one() {
                return Formula::True;
            }
            if c == Int::from(-1) {
                return Formula::False;
            }
        }
        Formula::atom(atom.clone())
    });

    let delta_i64 = delta.to_i64().unwrap_or(i64::MAX);
    let mut disjuncts: Vec<Formula> = Vec::new();
    let mut j = Int::one();
    let mut count = 0i64;
    while count < delta_i64 {
        // F_{-∞}[y := j]
        let mut map = BTreeMap::new();
        map.insert(y, Term::constant(j.clone()));
        disjuncts.push(minus_infinity.substitute(&map));
        // F[y := b + j] for each lower bound b.
        for b in &lower_bounds {
            let mut map = BTreeMap::new();
            map.insert(y, b.clone() + Term::constant(j.clone()));
            disjuncts.push(g.substitute(&map));
        }
        j += Int::one();
        count += 1;
    }
    Formula::or(disjuncts).simplify()
}

/// Rewrites equality and disequality atoms that mention `x` into
/// inequalities, so that only `Le`, `Divides` and `NotDivides` atoms contain
/// `x`.  The input must be in NNF.
fn prepare(x: Symbol, f: &Formula) -> Formula {
    map_atoms(f, &mut |atom| match atom {
        Atom::Eq(t) if t.contains_var(&x) => Formula::and(vec![
            Formula::atom(Atom::Le(t.clone())),
            Formula::atom(Atom::Le(-t.clone())),
        ]),
        Atom::Neq(t) if t.contains_var(&x) => Formula::or(vec![
            Formula::atom(Atom::Le(t.clone() + 1)),
            Formula::atom(Atom::Le(Term::constant(1) - t.clone())),
        ]),
        other => Formula::atom(other.clone()),
    })
}

/// Applies a transformation to every atom of a quantifier-free formula.
fn map_atoms(f: &Formula, transform: &mut impl FnMut(&Atom) -> Formula) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => transform(a),
        Formula::And(parts) => {
            Formula::and(parts.iter().map(|p| map_atoms(p, transform)).collect())
        }
        Formula::Or(parts) => {
            Formula::or(parts.iter().map(|p| map_atoms(p, transform)).collect())
        }
        Formula::Not(inner) => Formula::not(map_atoms(inner, transform)),
        Formula::Exists(vars, body) => {
            Formula::exists(vars.clone(), map_atoms(body, transform))
        }
        Formula::Forall(vars, body) => {
            Formula::forall(vars.clone(), map_atoms(body, transform))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::{parse_formula, Valuation};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// Checks that `f` and `g` agree on every valuation of `vars` over a
    /// small grid.
    fn assert_equiv_on_grid(f: &Formula, g: &Formula, vars: &[&str], lo: i64, hi: i64) {
        fn rec(
            f: &Formula,
            g: &Formula,
            vars: &[&str],
            lo: i64,
            hi: i64,
            idx: usize,
            v: &mut Valuation,
        ) {
            if idx == vars.len() {
                assert_eq!(
                    f.eval(v),
                    g.eval(v),
                    "formulas disagree at {}: {} vs {}",
                    v,
                    f,
                    g
                );
                return;
            }
            for val in lo..=hi {
                v.set(sym(vars[idx]), val.into());
                rec(f, g, vars, lo, hi, idx + 1, v);
            }
        }
        let mut v = Valuation::new();
        rec(f, g, vars, lo, hi, 0, &mut v);
    }

    #[test]
    fn eliminate_even_number() {
        // exists k. x = 2k  ⇔  2 | x
        let f = parse_formula("exists k. x = 2*k").unwrap();
        let g = eliminate_quantifiers(&f);
        assert!(g.is_quantifier_free());
        let expected = parse_formula("2 | x").unwrap();
        assert_equiv_on_grid(&g, &expected, &["x"], -6, 6);
    }

    #[test]
    fn eliminate_bounded_existential() {
        // exists y. 0 <= y && y <= x  ⇔  x >= 0
        let f = parse_formula("exists y. 0 <= y && y <= x").unwrap();
        let g = eliminate_quantifiers(&f);
        let expected = parse_formula("x >= 0").unwrap();
        assert_equiv_on_grid(&g, &expected, &["x"], -5, 5);
    }

    #[test]
    fn eliminate_universal() {
        // forall y. y >= 0 -> x + y >= 0   ⇔  x >= 0
        let f = parse_formula("forall y. y >= 0 -> x + y >= 0").unwrap();
        let g = eliminate_quantifiers(&f);
        assert!(g.is_quantifier_free());
        let expected = parse_formula("x >= 0").unwrap();
        assert_equiv_on_grid(&g, &expected, &["x"], -5, 5);
    }

    #[test]
    fn eliminate_with_coefficients() {
        // exists y. 2*y <= x && x <= 2*y + 1  is true for every x
        let f = parse_formula("exists y. 2*y <= x && x <= 2*y + 1").unwrap();
        let g = eliminate_quantifiers(&f);
        assert_equiv_on_grid(&g, &Formula::True, &["x"], -6, 6);
    }

    #[test]
    fn eliminate_with_gap() {
        // exists y. 3*y = x  ⇔ 3 | x
        let f = parse_formula("exists y. 3*y = x").unwrap();
        let g = eliminate_quantifiers(&f);
        let expected = parse_formula("3 | x").unwrap();
        assert_equiv_on_grid(&g, &expected, &["x"], -9, 9);
    }

    #[test]
    fn nested_quantifiers() {
        // exists y. (forall z. z >= y -> z >= x)  ⇔  exists y. y >= x  ⇔ true
        let f = parse_formula("exists y. (forall z. z >= y -> z >= x)").unwrap();
        let g = eliminate_quantifiers(&f);
        assert_equiv_on_grid(&g, &Formula::True, &["x"], -4, 4);
    }

    #[test]
    fn unsat_sentence() {
        // exists x. x <= 0 && x >= 1  ⇔ false
        let f = parse_formula("exists x. x <= 0 && x >= 1").unwrap();
        let g = eliminate_quantifiers(&f);
        assert_equiv_on_grid(&g, &Formula::False, &[], 0, 0);
    }

    #[test]
    fn disequality_under_quantifier() {
        // exists y. y != x && 0 <= y && y <= 1   ⇔  true (some y in {0,1} differs from x... only if x is not both) — actually
        // for any x, at least one of 0, 1 differs from x, so this is true.
        let f = parse_formula("exists y. y != x && 0 <= y && y <= 1").unwrap();
        let g = eliminate_quantifiers(&f);
        assert_equiv_on_grid(&g, &Formula::True, &["x"], -3, 3);
    }

    #[test]
    fn two_variable_projection() {
        // exists y. x = y + z && y >= 0   ⇔  x >= z
        let f = parse_formula("exists y. x = y + z && y >= 0").unwrap();
        let g = eliminate_quantifiers(&f);
        let expected = parse_formula("x >= z").unwrap();
        assert_equiv_on_grid(&g, &expected, &["x", "z"], -4, 4);
    }

    #[test]
    fn forall_with_divisibility() {
        // forall y. 2 | y -> y != 2*x + 1 ... every even y differs from an odd
        // number, so this is true for all x.
        let f = parse_formula("forall y. (2 | y) -> y != 2*x + 1").unwrap();
        let g = eliminate_quantifiers(&f);
        assert_equiv_on_grid(&g, &Formula::True, &["x"], -4, 4);
    }
}
