//! Satisfiability, validity and quantifier elimination for linear integer
//! arithmetic (LIA).
//!
//! This crate is the from-scratch replacement for the SMT solver (Z3) that
//! the ComPACT paper relies on.  It provides:
//!
//! * [`Solver`] — lazy DPLL(T)-style satisfiability with integer models,
//!   validity/entailment checks, implicant and DNF-cube enumeration;
//! * [`eliminate_quantifiers`] — Cooper's quantifier elimination for
//!   Presburger arithmetic;
//! * a theory solver for conjunctions of linear integer constraints
//!   (simplex relaxation + branch-and-bound + gcd tests), see
//!   [`solve_conjunction`].
//!
//! # Examples
//!
//! ```
//! use compact_logic::parse_formula;
//! use compact_smt::Solver;
//!
//! let solver = Solver::new();
//! // Every integer is even or odd:
//! let f = parse_formula("(2 | x) || (2 | x + 1)").unwrap();
//! assert!(solver.is_valid(&f));
//! ```

#![warn(missing_docs)]

mod cooper;
mod solver;
mod theory;

pub use cooper::{eliminate_exists, eliminate_quantifiers};
pub use solver::{Solver, SolverStats};
pub use theory::{solve_conjunction, TheoryResult};
