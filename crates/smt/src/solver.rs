//! The public SMT interface: satisfiability, validity, entailment,
//! implicants and model queries for LIA formulas.
//!
//! The solver is *lazy DPLL(T)* in spirit: the propositional structure of a
//! (quantifier-free, NNF) formula is explored by backtracking over its
//! disjunctions, accumulating a cube of theory literals which is checked for
//! integer satisfiability by the theory solver (`crate::theory`).  Quantified
//! formulas are reduced to quantifier-free ones with Cooper's elimination
//! first.

use crate::cooper::eliminate_quantifiers;
use crate::theory::{solve_conjunction, TheoryResult};
use compact_logic::{Atom, Formula, Symbol, Valuation};
use std::cell::RefCell;
use std::collections::HashMap;

/// Statistics collected by a [`Solver`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of satisfiability queries answered.
    pub sat_queries: usize,
    /// Number of theory (conjunction) checks performed.
    pub theory_checks: usize,
    /// Number of quantifier eliminations performed.
    pub eliminations: usize,
}

/// An SMT solver for linear integer arithmetic.
///
/// The solver memoizes satisfiability verdicts for syntactically identical
/// formulas, which matters because the algebraic analysis re-checks the same
/// sub-formulas many times while traversing a path-expression DAG.
///
/// # Examples
///
/// ```
/// use compact_logic::parse_formula;
/// use compact_smt::Solver;
/// let solver = Solver::new();
/// let f = parse_formula("x > 0 && x < 10 && 3 | x").unwrap();
/// assert!(solver.is_sat(&f));
/// assert!(!solver.is_valid(&f));
/// let model = solver.model(&f).unwrap();
/// assert_eq!(f.eval(&model), Some(true));
/// ```
#[derive(Default)]
pub struct Solver {
    cache: RefCell<HashMap<Formula, bool>>,
    stats: RefCell<SolverStats>,
}

impl Solver {
    /// Creates a new solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Returns a snapshot of the solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats.borrow().clone()
    }

    /// Decides satisfiability of a formula (quantified formulas are allowed).
    pub fn is_sat(&self, f: &Formula) -> bool {
        if let Some(&cached) = self.cache.borrow().get(f) {
            return cached;
        }
        self.stats.borrow_mut().sat_queries += 1;
        let result = self.model_impl(f).is_some();
        self.cache.borrow_mut().insert(f.clone(), result);
        result
    }

    /// Decides validity of a formula.
    pub fn is_valid(&self, f: &Formula) -> bool {
        !self.is_sat(&Formula::not(f.clone()))
    }

    /// Decides whether `f` entails `g` (i.e. `f ⇒ g` is valid).
    pub fn entails(&self, f: &Formula, g: &Formula) -> bool {
        self.is_valid(&Formula::implies(f.clone(), g.clone()))
    }

    /// Decides whether `f` and `g` are logically equivalent.
    pub fn equivalent(&self, f: &Formula, g: &Formula) -> bool {
        self.entails(f, g) && self.entails(g, f)
    }

    /// Returns a model of the formula, if it is satisfiable.
    ///
    /// The model assigns every free variable of the formula.
    pub fn model(&self, f: &Formula) -> Option<Valuation> {
        let model = self.model_impl(f);
        self.cache.borrow_mut().insert(f.clone(), model.is_some());
        model
    }

    fn model_impl(&self, f: &Formula) -> Option<Valuation> {
        let qf = self.quantifier_free(f);
        let nnf = qf.nnf();
        let mut cube: Vec<Atom> = Vec::new();
        let model = self.search(&[&nnf], &mut cube)?;
        // Complete the model over all free variables of the original formula.
        let mut model = model;
        for v in f.free_vars() {
            if !model.contains(&v) {
                model.set(v, 0.into());
            }
        }
        Some(model.restrict(f.free_vars().iter()))
    }

    /// Eliminates quantifiers if necessary.
    pub fn quantifier_free(&self, f: &Formula) -> Formula {
        if f.is_quantifier_free() {
            f.clone()
        } else {
            self.stats.borrow_mut().eliminations += 1;
            eliminate_quantifiers(f)
        }
    }

    /// Performs quantifier elimination and light simplification.
    pub fn qe(&self, f: &Formula) -> Formula {
        self.quantifier_free(f).simplify()
    }

    /// Backtracking search over the propositional structure.
    ///
    /// `goals` is a stack of sub-formulas that must all hold; `cube`
    /// accumulates the chosen theory literals.
    fn search(&self, goals: &[&Formula], cube: &mut Vec<Atom>) -> Option<Valuation> {
        let Some((first, rest)) = goals.split_first() else {
            self.stats.borrow_mut().theory_checks += 1;
            return match solve_conjunction(cube) {
                TheoryResult::Sat(m) => Some(m),
                TheoryResult::Unsat => None,
            };
        };
        match first {
            Formula::True => self.search(rest, cube),
            Formula::False => None,
            Formula::Atom(a) => {
                cube.push(a.clone());
                let result = self.search(rest, cube);
                if result.is_none() {
                    cube.pop();
                }
                result
            }
            Formula::And(parts) => {
                let mut new_goals: Vec<&Formula> = parts.iter().collect();
                new_goals.extend_from_slice(rest);
                self.search(&new_goals, cube)
            }
            Formula::Or(parts) => {
                let depth = cube.len();
                for p in parts {
                    let mut new_goals: Vec<&Formula> = vec![p];
                    new_goals.extend_from_slice(rest);
                    if let Some(m) = self.search(&new_goals, cube) {
                        return Some(m);
                    }
                    cube.truncate(depth);
                }
                None
            }
            Formula::Not(inner) => match inner.as_ref() {
                // NNF guarantees negations only around atoms, but be tolerant.
                Formula::Atom(a) => {
                    cube.push(a.negate());
                    let result = self.search(rest, cube);
                    if result.is_none() {
                        cube.pop();
                    }
                    result
                }
                other => {
                    let nnf = Formula::not(other.clone()).nnf();
                    self.search_owned(nnf, rest, cube)
                }
            },
            Formula::Exists(..) | Formula::Forall(..) => {
                let qf = self.quantifier_free(first);
                self.search_owned(qf, rest, cube)
            }
        }
    }

    fn search_owned(
        &self,
        formula: Formula,
        rest: &[&Formula],
        cube: &mut Vec<Atom>,
    ) -> Option<Valuation> {
        let mut new_goals: Vec<&Formula> = vec![&formula];
        new_goals.extend_from_slice(rest);
        self.search(&new_goals, cube)
    }

    /// Returns one satisfiable implicant (cube) of the formula: a conjunction
    /// of literals that entails the formula and is satisfiable.
    pub fn implicant(&self, f: &Formula) -> Option<Vec<Atom>> {
        let qf = self.quantifier_free(f).nnf();
        let mut cube = Vec::new();
        self.search(&[&qf], &mut cube)?;
        Some(cube)
    }

    /// Enumerates the satisfiable cubes of the disjunctive normal form of the
    /// formula.  The disjunction of the returned cubes is equivalent to the
    /// formula (unsatisfiable cubes are dropped).
    ///
    /// The result is capped at `limit` cubes; `None` is returned if the cap
    /// is reached (callers fall back to a coarser approximation).
    pub fn dnf_cubes(&self, f: &Formula, limit: usize) -> Option<Vec<Vec<Atom>>> {
        let qf = self.quantifier_free(f).nnf();
        let mut cubes = Vec::new();
        let mut cube = Vec::new();
        if self.enumerate(&[&qf], &mut cube, &mut cubes, limit) {
            Some(cubes)
        } else {
            None
        }
    }

    /// Depth-first enumeration of all satisfiable DNF cubes.  Returns `false`
    /// if the limit was exceeded.
    fn enumerate(
        &self,
        goals: &[&Formula],
        cube: &mut Vec<Atom>,
        out: &mut Vec<Vec<Atom>>,
        limit: usize,
    ) -> bool {
        let Some((first, rest)) = goals.split_first() else {
            self.stats.borrow_mut().theory_checks += 1;
            if solve_conjunction(cube).is_sat() {
                if out.len() >= limit {
                    return false;
                }
                out.push(cube.clone());
            }
            return true;
        };
        match first {
            Formula::True => self.enumerate(rest, cube, out, limit),
            Formula::False => true,
            Formula::Atom(a) => {
                cube.push(a.clone());
                let ok = self.enumerate(rest, cube, out, limit);
                cube.pop();
                ok
            }
            Formula::And(parts) => {
                let mut new_goals: Vec<&Formula> = parts.iter().collect();
                new_goals.extend_from_slice(rest);
                self.enumerate(&new_goals, cube, out, limit)
            }
            Formula::Or(parts) => {
                for p in parts {
                    let mut new_goals: Vec<&Formula> = vec![p];
                    new_goals.extend_from_slice(rest);
                    if !self.enumerate(&new_goals, cube, out, limit) {
                        return false;
                    }
                }
                true
            }
            Formula::Not(inner) => {
                let nnf = Formula::not((**inner).clone()).nnf();
                let mut new_goals: Vec<&Formula> = vec![&nnf];
                new_goals.extend_from_slice(rest);
                self.enumerate(&new_goals, cube, out, limit)
            }
            Formula::Exists(..) | Formula::Forall(..) => {
                let qf = self.quantifier_free(first);
                let mut new_goals: Vec<&Formula> = vec![&qf];
                new_goals.extend_from_slice(rest);
                self.enumerate(&new_goals, cube, out, limit)
            }
        }
    }

    /// Simplifies a formula by pruning disjuncts and conjuncts that the
    /// solver can discharge: unsatisfiable disjuncts are dropped, conjuncts
    /// entailed by the rest are removed.
    pub fn prune(&self, f: &Formula) -> Formula {
        let f = f.simplify();
        match &f {
            Formula::Or(parts) => {
                let kept: Vec<Formula> = parts
                    .iter()
                    .filter(|p| self.is_sat(p))
                    .cloned()
                    .collect();
                Formula::or(kept)
            }
            Formula::And(parts) => {
                // Drop conjuncts entailed by the conjunction of the others.
                let mut kept: Vec<Formula> = parts.clone();
                let mut i = 0;
                while i < kept.len() {
                    let candidate = kept[i].clone();
                    let others = Formula::and(
                        kept.iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, p)| p.clone())
                            .collect(),
                    );
                    if !others.is_true() && self.entails(&others, &candidate) {
                        kept.remove(i);
                    } else {
                        i += 1;
                    }
                }
                Formula::and(kept)
            }
            other => other.clone(),
        }
    }

    /// Checks whether a formula over `Var` describes at least one state where
    /// the given variables can take any value — a cheap sufficient check used
    /// in reporting.
    pub fn variables_of(&self, f: &Formula) -> Vec<Symbol> {
        f.free_vars().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn solver() -> Solver {
        Solver::new()
    }

    #[test]
    fn sat_and_valid() {
        let s = solver();
        assert!(s.is_sat(&parse_formula("x > 0").unwrap()));
        assert!(!s.is_sat(&parse_formula("x > 0 && x < 0").unwrap()));
        assert!(s.is_valid(&parse_formula("x >= 0 || x <= 0").unwrap()));
        assert!(!s.is_valid(&parse_formula("x >= 0").unwrap()));
        assert!(s.is_valid(&Formula::True));
        assert!(!s.is_sat(&Formula::False));
    }

    #[test]
    fn models_satisfy_their_formula() {
        let s = solver();
        let cases = [
            "x + y = 10 && x > y && y >= 0",
            "2*x > 7 && x < 10 && 3 | x + 1",
            "(a <= b && b <= c) && a != c",
            "x = 5 || x = -5",
        ];
        for case in cases {
            let f = parse_formula(case).unwrap();
            let m = s.model(&f).expect(case);
            assert_eq!(f.eval(&m), Some(true), "bad model for {}", case);
        }
    }

    #[test]
    fn quantified_queries() {
        let s = solver();
        // Every integer is even or odd.
        assert!(s.is_valid(&parse_formula("(2 | x) || (2 | x + 1)").unwrap()));
        // exists y. y > x is valid (no upper bound on integers).
        assert!(s.is_valid(&parse_formula("exists y. y > x").unwrap()));
        // forall y. y > x is unsatisfiable.
        assert!(!s.is_sat(&parse_formula("forall y. y > x").unwrap()));
        // Quantifier alternation.
        assert!(s.is_valid(&parse_formula("forall x. exists y. y = x + 1").unwrap()));
        assert!(!s.is_sat(&parse_formula("exists x. forall y. y <= x").unwrap()));
    }

    #[test]
    fn entailment() {
        let s = solver();
        let f = parse_formula("x >= 2").unwrap();
        let g = parse_formula("x >= 0").unwrap();
        assert!(s.entails(&f, &g));
        assert!(!s.entails(&g, &f));
        assert!(s.equivalent(
            &parse_formula("x >= 1").unwrap(),
            &parse_formula("x > 0").unwrap()
        ));
    }

    #[test]
    fn implicants_entail_the_formula() {
        let s = solver();
        let f = parse_formula("(x > 0 && y > 0) || (x < 0 && y < 0)").unwrap();
        let cube = s.implicant(&f).expect("sat");
        let cube_formula = Formula::and(cube.into_iter().map(Formula::atom).collect());
        assert!(s.entails(&cube_formula, &f));
        assert!(s.is_sat(&cube_formula));
    }

    #[test]
    fn dnf_cubes_cover_the_formula() {
        let s = solver();
        let f = parse_formula("(x > 0 || y > 0) && (x < 5)").unwrap();
        let cubes = s.dnf_cubes(&f, 64).expect("within limit");
        assert!(!cubes.is_empty());
        let union = Formula::or(
            cubes
                .iter()
                .map(|c| Formula::and(c.iter().cloned().map(Formula::atom).collect()))
                .collect(),
        );
        assert!(s.equivalent(&union, &f));
    }

    #[test]
    fn dnf_cube_limit() {
        let s = solver();
        let f = parse_formula("(a > 0 || a < 0) && (b > 0 || b < 0) && (c > 0 || c < 0)").unwrap();
        assert!(s.dnf_cubes(&f, 2).is_none());
        assert_eq!(s.dnf_cubes(&f, 8).unwrap().len(), 8);
    }

    #[test]
    fn prune_simplifies() {
        let s = solver();
        let f = parse_formula("(x > 0 && x > 5) || (x > 0 && x < 0)").unwrap();
        let g = s.prune(&f);
        // The second disjunct is unsatisfiable, the first collapses to x > 5.
        assert!(s.equivalent(&g, &parse_formula("x > 5").unwrap()));
        assert!(g.size() < f.size());
    }

    #[test]
    fn caching_is_transparent() {
        let s = solver();
        let f = parse_formula("x > 3 && x < 100").unwrap();
        assert!(s.is_sat(&f));
        assert!(s.is_sat(&f));
        assert_eq!(s.stats().sat_queries, 1);
    }

    #[test]
    fn fibonacci_guard_example() {
        // The body summary of Example 5.4: g >= 2 && (g' = g - 1 || g' = g - 2).
        let s = solver();
        let body = parse_formula("g >= 2 && (g' = g - 1 || g' = g - 2)").unwrap();
        assert!(s.is_sat(&body));
        // From g = 1 there is no transition.
        let blocked = parse_formula("g = 1 && g >= 2 && (g' = g - 1 || g' = g - 2)").unwrap();
        assert!(!s.is_sat(&blocked));
    }
}
