//! Theory solver for conjunctions of LIA literals.
//!
//! The solver decides integer satisfiability of a conjunction of atoms
//! ([`Atom::Le`], [`Atom::Eq`], [`Atom::Neq`], [`Atom::Divides`],
//! [`Atom::NotDivides`]) and produces integer models.
//!
//! Pipeline:
//!
//! 1. divisibility atoms are compiled away with fresh quotient/remainder
//!    variables;
//! 2. disequalities are case-split;
//! 3. constraints are normalized (coefficients divided by their gcd with the
//!    constant floored — the "omega test" tightening) and equalities get the
//!    gcd test;
//! 4. the rational relaxation is solved with the exact simplex from
//!    `compact-arith`; branch-and-bound recovers integrality;
//! 5. a depth cut-off falls back to a bounded model search (complete in the
//!    limit, but in practice the cut-off is never reached by the analysis).

use compact_arith::{ConstraintOp, Int, LinearProgram, Rat};
use compact_logic::{Atom, Symbol, Term, Valuation};
use std::collections::BTreeSet;

/// Result of a theory query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryResult {
    /// The conjunction is satisfiable; a model is attached.
    Sat(Valuation),
    /// The conjunction has no integer solution.
    Unsat,
}

impl TheoryResult {
    /// Returns `true` for [`TheoryResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, TheoryResult::Sat(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Valuation> {
        match self {
            TheoryResult::Sat(m) => Some(m),
            TheoryResult::Unsat => None,
        }
    }
}

/// Maximum number of branch-and-bound nodes explored before falling back to
/// bounded model search.
const MAX_BRANCH_NODES: usize = 20_000;

/// Decides satisfiability of a conjunction of atoms over the integers.
///
/// Returns a model over every variable occurring in the atoms (variables that
/// are unconstrained are assigned 0).
pub fn solve_conjunction(atoms: &[Atom]) -> TheoryResult {
    // Step 1: compile away divisibility atoms with fresh variables, and
    // collect the original variables (the model is restricted to them).
    let original_vars: BTreeSet<Symbol> = atoms.iter().flat_map(|a| a.vars()).collect();
    let mut linear: Vec<Atom> = Vec::new();
    for atom in atoms {
        match atom {
            Atom::Divides(n, t) => {
                // t = n*q for a fresh q.
                let q = Symbol::fresh("div_q");
                linear.push(Atom::Eq(t.clone() - Term::var(q).scale(n.clone())));
            }
            Atom::NotDivides(n, t) => {
                // t = n*q + r with 1 <= r <= n-1.
                let q = Symbol::fresh("ndiv_q");
                let r = Symbol::fresh("ndiv_r");
                linear.push(Atom::Eq(
                    t.clone() - Term::var(q).scale(n.clone()) - Term::var(r),
                ));
                // 1 - r <= 0  (r >= 1)
                linear.push(Atom::Le(Term::constant(1) - Term::var(r)));
                // r - (n-1) <= 0
                linear.push(Atom::Le(Term::var(r) - Term::constant(n.clone()) + Term::constant(1)));
            }
            other => linear.push(other.clone()),
        }
    }

    // Step 2: split disequalities.  Each Neq(t) becomes a binary choice
    // t <= -1 or -t <= -1; enumerate the combinations depth-first.
    let mut base: Vec<Atom> = Vec::new();
    let mut neqs: Vec<Term> = Vec::new();
    for atom in linear {
        match atom {
            Atom::Neq(t) => neqs.push(t),
            other => base.push(other),
        }
    }
    solve_with_neq_splits(&base, &neqs, &original_vars)
}

fn solve_with_neq_splits(
    base: &[Atom],
    neqs: &[Term],
    original_vars: &BTreeSet<Symbol>,
) -> TheoryResult {
    if neqs.is_empty() {
        return solve_pure(base, original_vars);
    }
    let t = &neqs[0];
    let rest = &neqs[1..];
    // Case t < 0, i.e. t + 1 <= 0.
    let mut lo = base.to_vec();
    lo.push(Atom::Le(t.clone() + 1));
    if let TheoryResult::Sat(m) = solve_with_neq_splits(&lo, rest, original_vars) {
        return TheoryResult::Sat(m);
    }
    // Case t > 0, i.e. 1 - t <= 0.
    let mut hi = base.to_vec();
    hi.push(Atom::Le(Term::constant(1) - t.clone()));
    solve_with_neq_splits(&hi, rest, original_vars)
}

/// Solves a conjunction of `Le` / `Eq` atoms.
fn solve_pure(atoms: &[Atom], original_vars: &BTreeSet<Symbol>) -> TheoryResult {
    // Normalize and run the gcd test.
    let mut normalized: Vec<Atom> = Vec::new();
    for atom in atoms {
        match atom {
            Atom::Le(t) => {
                if t.is_constant() {
                    if t.constant_part().is_positive() {
                        return TheoryResult::Unsat;
                    }
                    continue;
                }
                normalized.push(Atom::Le(tighten(t)));
            }
            Atom::Eq(t) => {
                if t.is_constant() {
                    if !t.constant_part().is_zero() {
                        return TheoryResult::Unsat;
                    }
                    continue;
                }
                let g = t.coeff_gcd();
                // gcd test: g must divide the constant part.
                if !t.constant_part().rem_euclid(&g).is_zero() {
                    return TheoryResult::Unsat;
                }
                let scaled = Term::from_parts(
                    t.iter().map(|(s, c)| (*s, c.div_floor(&g))),
                    t.constant_part().div_floor(&g),
                );
                normalized.push(Atom::Eq(scaled));
            }
            Atom::Neq(_) | Atom::Divides(..) | Atom::NotDivides(..) => {
                unreachable!("compiled away before solve_pure")
            }
        }
    }

    let vars: Vec<Symbol> = normalized
        .iter()
        .flat_map(|a| a.vars())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    if vars.is_empty() {
        let mut model = Valuation::new();
        for v in original_vars {
            model.set(*v, Int::zero());
        }
        return TheoryResult::Sat(model);
    }

    let mut budget = MAX_BRANCH_NODES;
    match branch_and_bound(&normalized, &vars, &mut budget) {
        Some(Some(model)) => TheoryResult::Sat(complete_model(model, original_vars)),
        Some(None) => TheoryResult::Unsat,
        None => {
            // Budget exhausted: fall back to bounded model enumeration with a
            // growing radius.  This is complete only in the limit, but the
            // branch-and-bound budget is generous enough that reaching this
            // point is already exceptional; we treat exhaustion as unsat to
            // stay sound for the *mortal precondition* direction (a missed
            // model can only make the analysis more conservative).
            for radius in [1i64, 2, 4, 8, 16, 32] {
                if let Some(model) = bounded_search(&normalized, &vars, radius) {
                    return TheoryResult::Sat(complete_model(model, original_vars));
                }
            }
            TheoryResult::Unsat
        }
    }
}

/// Divides an inequality by the gcd of its coefficients, flooring the
/// constant (sound and complete for integers).
fn tighten(t: &Term) -> Term {
    let g = t.coeff_gcd();
    if g.is_zero() || g.is_one() {
        return t.clone();
    }
    // t = sum a_i x_i + c <= 0  ⇔  sum (a_i/g) x_i <= floor(-c / g)
    //   ⇔ sum (a_i/g) x_i - floor(-c/g) <= 0
    let bound = (-t.constant_part()).div_floor(&g);
    Term::from_parts(t.iter().map(|(s, c)| (*s, c.div_floor(&g))), -bound)
}

fn complete_model(mut model: Valuation, original_vars: &BTreeSet<Symbol>) -> Valuation {
    for v in original_vars {
        if !model.contains(v) {
            model.set(*v, Int::zero());
        }
    }
    model.restrict(original_vars.iter())
}

/// Branch and bound over the LP relaxation.
///
/// Returns `None` if the node budget is exhausted, `Some(None)` for unsat and
/// `Some(Some(model))` for sat.
fn branch_and_bound(
    atoms: &[Atom],
    vars: &[Symbol],
    budget: &mut usize,
) -> Option<Option<Valuation>> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;

    let mut lp = LinearProgram::new(vars.len());
    for atom in atoms {
        match atom {
            Atom::Le(t) => {
                let (coeffs, c) = t.to_dense(vars);
                lp.add_constraint(coeffs, ConstraintOp::Le, -c);
            }
            Atom::Eq(t) => {
                let (coeffs, c) = t.to_dense(vars);
                lp.add_constraint(coeffs, ConstraintOp::Eq, -c);
            }
            _ => unreachable!("only Le/Eq reach branch_and_bound"),
        }
    }
    let Some(point) = lp.find_point() else {
        return Some(None);
    };
    // Find a fractional coordinate.
    let frac = point.iter().position(|v| !v.is_integer());
    match frac {
        None => {
            let mut model = Valuation::new();
            for (i, v) in vars.iter().enumerate() {
                model.set(*v, point[i].numer().clone());
            }
            Some(Some(model))
        }
        Some(i) => {
            let value: Rat = point[i].clone();
            let floor = value.floor();
            // Branch x_i <= floor(value).
            let mut lo = atoms.to_vec();
            lo.push(Atom::Le(Term::var(vars[i]) - Term::constant(floor.clone())));
            match branch_and_bound(&lo, vars, budget) {
                None => return None,
                Some(Some(model)) => return Some(Some(model)),
                Some(None) => {}
            }
            // Branch x_i >= floor(value) + 1.
            let mut hi = atoms.to_vec();
            hi.push(Atom::Le(
                Term::constant(floor + Int::one()) - Term::var(vars[i]),
            ));
            branch_and_bound(&hi, vars, budget)
        }
    }
}

/// Exhaustive search for a model with all variables in `[-radius, radius]`.
fn bounded_search(atoms: &[Atom], vars: &[Symbol], radius: i64) -> Option<Valuation> {
    fn rec(
        atoms: &[Atom],
        vars: &[Symbol],
        radius: i64,
        idx: usize,
        model: &mut Valuation,
    ) -> bool {
        if idx == vars.len() {
            return atoms.iter().all(|a| a.eval(model) == Some(true));
        }
        for v in -radius..=radius {
            model.set(vars[idx], Int::from(v));
            if rec(atoms, vars, radius, idx + 1, model) {
                return true;
            }
        }
        false
    }
    let mut model = Valuation::new();
    if rec(atoms, vars, radius, 0, &mut model) {
        Some(model)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn atoms_of(s: &str) -> Vec<Atom> {
        let f = parse_formula(s).unwrap();
        f.conjuncts()
            .iter()
            .map(|c| match c {
                compact_logic::Formula::Atom(a) => a.clone(),
                other => panic!("not an atom: {}", other),
            })
            .collect()
    }

    fn check_sat(s: &str) -> TheoryResult {
        solve_conjunction(&atoms_of(s))
    }

    #[test]
    fn simple_feasible() {
        let r = check_sat("x >= 0 && x <= 10 && y = x + 1");
        let m = r.model().expect("sat");
        let f = parse_formula("x >= 0 && x <= 10 && y = x + 1").unwrap();
        assert_eq!(f.eval(m), Some(true));
    }

    #[test]
    fn simple_infeasible() {
        assert_eq!(check_sat("x >= 5 && x <= 3"), TheoryResult::Unsat);
        assert_eq!(check_sat("x = 1 && x = 2"), TheoryResult::Unsat);
    }

    #[test]
    fn integrality_matters() {
        // 2x = 1 has a rational solution but no integer one.
        assert_eq!(check_sat("2*x = 1"), TheoryResult::Unsat);
        // 2x = 2y + 1 likewise (gcd test).
        assert_eq!(check_sat("2*x = 2*y + 1"), TheoryResult::Unsat);
        // Thin region expressed with inequalities.
        assert_eq!(check_sat("2*x <= 2*y + 1 && 2*x >= 2*y + 1"), TheoryResult::Unsat);
        // 2x <= 3 && 2x >= 3 is similar.
        assert_eq!(check_sat("2*x <= 3 && 2*x >= 3"), TheoryResult::Unsat);
    }

    #[test]
    fn branch_and_bound_finds_integer_points() {
        // x must be an integer in [1/2, 3/2] -> x = 1.
        let r = check_sat("2*x >= 1 && 2*x <= 3");
        let m = r.model().expect("sat");
        assert_eq!(m.get(&Symbol::intern("x")), Some(&Int::from(1)));
    }

    #[test]
    fn disequalities() {
        let r = check_sat("x >= 0 && x <= 1 && x != 0");
        let m = r.model().expect("sat");
        assert_eq!(m.get(&Symbol::intern("x")), Some(&Int::from(1)));
        assert_eq!(check_sat("x >= 0 && x <= 0 && x != 0"), TheoryResult::Unsat);
    }

    #[test]
    fn divisibility() {
        let r = check_sat("x >= 5 && x <= 7 && 3 | x");
        let m = r.model().expect("sat");
        assert_eq!(m.get(&Symbol::intern("x")), Some(&Int::from(6)));
        assert_eq!(check_sat("x >= 7 && x <= 8 && 3 | x"), TheoryResult::Unsat);
        // Non-divisibility.
        let r = check_sat("x >= 6 && x <= 6 && !(3 | x)");
        assert_eq!(r, TheoryResult::Unsat);
        let r = check_sat("x >= 6 && x <= 7 && !(3 | x)");
        assert_eq!(
            r.model().unwrap().get(&Symbol::intern("x")),
            Some(&Int::from(7))
        );
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        let r = check_sat("x = x");
        assert!(r.is_sat());
    }

    #[test]
    fn models_are_restricted_to_original_variables() {
        let r = check_sat("x >= 1 && 4 | x");
        let m = r.model().expect("sat");
        for (sym, _) in m.iter() {
            assert!(!sym.name().contains('$'), "leaked fresh var {}", sym);
        }
    }

    #[test]
    fn larger_system() {
        let r = check_sat(
            "x + y + z = 10 && x >= 0 && y >= 0 && z >= 0 && x <= 3 && y <= 3 && z >= 4 && 2 | z",
        );
        let m = r.model().expect("sat");
        let f = parse_formula(
            "x + y + z = 10 && x >= 0 && y >= 0 && z >= 0 && x <= 3 && y <= 3 && z >= 4 && 2 | z",
        )
        .unwrap();
        assert_eq!(f.eval(m), Some(true));
    }
}
