//! The `bitprecise` suite: the `termination` tasks with explicit
//! overflow-guard instrumentation.
//!
//! §7 of the paper obtains this suite by running `goto-instrument` on the
//! `termination` tasks: every signed operation gets an overflow check that
//! enters an infinite loop on failure, so proving termination also requires
//! proving the absence of signed overflow.  The same transformation is
//! applied here at the AST level: after every assignment the assigned
//! variable is checked against the 32-bit signed range, and the program
//! enters a divergent loop if the check fails.

use crate::{termination, Suite, Task};
use compact_lang::{Cond, Expr, SourceProgram, Stmt};
use compact_logic::{Formula, Symbol, Term};

const INT_MIN: i64 = -2_147_483_648;
const INT_MAX: i64 = 2_147_483_647;

/// Instruments a parsed program with overflow checks.
pub fn instrument(program: &SourceProgram) -> SourceProgram {
    let mut out = program.clone();
    for proc_def in &mut out.procedures {
        proc_def.body = instrument_block(&proc_def.body);
    }
    out
}

fn overflow_check(var: &str) -> Stmt {
    // if (x < INT_MIN || x > INT_MAX) { while (true) { skip; } }
    let x = Term::var(Symbol::intern(var));
    let out_of_range = Formula::or(vec![
        Formula::lt(x.clone(), Term::constant(INT_MIN)),
        Formula::gt(x, Term::constant(INT_MAX)),
    ]);
    Stmt::If(
        Cond::Formula(out_of_range),
        vec![Stmt::While(Cond::Formula(Formula::True), vec![Stmt::Skip])],
        Vec::new(),
    )
}

fn instrument_block(block: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for stmt in block {
        match stmt {
            Stmt::Assign(x, Expr::Linear(_)) => {
                out.push(stmt.clone());
                out.push(overflow_check(x));
            }
            Stmt::Assign(_, Expr::Nondet) => out.push(stmt.clone()),
            Stmt::If(c, t, e) => {
                out.push(Stmt::If(c.clone(), instrument_block(t), instrument_block(e)));
            }
            Stmt::While(c, body) => {
                out.push(Stmt::While(c.clone(), instrument_block(body)));
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// The tasks of the suite: one instrumented twin per `termination` task.
pub fn tasks() -> Vec<Task> {
    termination::tasks()
        .into_iter()
        .map(|task| Task {
            name: format!("{}_bitprecise", task.name),
            suite: Suite::BitPrecise,
            ast: instrument(&task.ast),
            terminating: task.terminating,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_adds_checks() {
        let tasks = tasks();
        let originals = termination::tasks();
        for (instrumented, original) in tasks.iter().zip(originals.iter()) {
            let a = instrumented.program().num_edges();
            let b = original.program().num_edges();
            assert!(a >= b, "instrumented {} lost edges", instrumented.name);
        }
        // At least one task actually gains an overflow check.
        assert!(tasks
            .iter()
            .zip(originals.iter())
            .any(|(i, o)| i.program().num_edges() > o.program().num_edges()));
    }
}
