//! Parameterized workload generators, used by the Criterion benchmarks for
//! scaling experiments (path-expression size, loop-nest depth, phase count).

/// Generates a nest of `depth` counting loops with the given constant bound
/// (the shape of the §7 anecdote and of the PolyBench kernels).
pub fn nested_counting_loops(depth: usize, bound: i64) -> String {
    fn nest(level: usize, depth: usize, bound: i64) -> String {
        if level == depth {
            return "acc := acc + 1;".to_string();
        }
        let var = format!("i{}", level);
        format!(
            "{var} := 0; while ({var} < {bound}) {{ {inner} {var} := {var} + 1; }}",
            var = var,
            bound = bound,
            inner = nest(level + 1, depth, bound)
        )
    }
    format!("proc main() {{ {} }}", nest(0, depth, bound))
}

/// Generates a chain of `count` consecutive (non-nested) counting loops.
pub fn counting_loop_chain(count: usize, bound: i64) -> String {
    let mut body = String::new();
    for i in 0..count {
        body.push_str(&format!(
            "x{i} := 0; while (x{i} < {bound}) {{ x{i} := x{i} + 1; }} ",
            i = i,
            bound = bound
        ));
    }
    format!("proc main() {{ {} }}", body)
}

/// Generates a family of loops with `n` phases: phase `k` decrements counter
/// `k` until it reaches zero, then control moves to phase `k+1`.
pub fn phase_loop_family(n: usize) -> Vec<String> {
    (1..=n)
        .map(|phases| {
            let mut branches = String::new();
            for k in (1..phases).rev() {
                branches = format!(
                    "if (c{k} > 0) {{ c{k} := c{k} - 1; }} else {{ {rest} }}",
                    k = k,
                    rest = if branches.is_empty() {
                        format!("c{} := c{} - 1;", phases, phases)
                    } else {
                        branches
                    }
                );
            }
            if branches.is_empty() {
                branches = "c1 := c1 - 1;".to_string();
            }
            let guard = (1..=phases)
                .map(|k| format!("c{} > 0", k))
                .collect::<Vec<_>>()
                .join(" || ");
            format!("proc main() {{ while ({}) {{ {} }} }}", guard, branches)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_lang::compile;

    #[test]
    fn nested_loops_have_expected_depth() {
        let src = nested_counting_loops(3, 8);
        let program = compile(&src).unwrap();
        // Three loop headers plus entry/exit structure.
        assert!(program.num_edges() >= 9);
        assert_eq!(src.matches("while").count(), 3);
    }

    #[test]
    fn chains_have_expected_length() {
        let src = counting_loop_chain(5, 3);
        assert_eq!(src.matches("while").count(), 5);
        assert!(compile(&src).is_ok());
    }

    #[test]
    fn phase_family_is_increasing() {
        let family = phase_loop_family(4);
        assert_eq!(family.len(), 4);
        for (i, src) in family.iter().enumerate() {
            assert!(compile(src).is_ok());
            assert_eq!(src.matches("||").count(), i);
        }
    }
}
