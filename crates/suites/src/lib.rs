//! The benchmark corpus used to reproduce the paper's evaluation (§7).
//!
//! The original evaluation uses 413 C programs drawn from SV-COMP
//! (`Termination-MainControlFlow`, `recursive`), a bit-precise re-encoding of
//! the first suite, and the PolyBench kernels.  Those C files cannot be
//! shipped or parsed here; instead this crate provides programs written in
//! the `compact-lang` mini language that mirror the *termination structure*
//! of the originals, organised into the same four suites:
//!
//! * [`Suite::Termination`] — small programs with challenging termination
//!   arguments (phased loops, nested dependencies, non-determinism,
//!   conditional termination);
//! * [`Suite::BitPrecise`] — the same programs with explicit overflow-guard
//!   instrumentation (an `assume`-guarded range check that jumps to a
//!   divergent sink on overflow, mirroring the `goto-instrument` encoding
//!   described in §7);
//! * [`Suite::Recursive`] — recursive and mutually recursive procedures;
//! * [`Suite::Polybench`] — affine loop nests in the shape of the PolyBench
//!   kernels (deep nesting, simple termination arguments).
//!
//! Each [`Task`] records whether the program is expected to terminate from
//! every initial state, which is the ground truth used by the harness.

#![warn(missing_docs)]

mod bitprecise;
mod generators;
mod polybench;
mod recursive;
mod termination;

pub use generators::{counting_loop_chain, nested_counting_loops, phase_loop_family};

use compact_lang::{lower, parse_source, Program, SourceProgram};

/// The four benchmark suites of §7.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Suite {
    /// Challenging terminating loops (SV-COMP `Termination-MainControlFlow`).
    Termination,
    /// The same tasks with overflow-guard instrumentation.
    BitPrecise,
    /// Recursive procedures.
    Recursive,
    /// PolyBench-style affine loop nests.
    Polybench,
}

impl Suite {
    /// All suites, in the order of Table 1.
    pub fn all() -> [Suite; 4] {
        [Suite::Termination, Suite::BitPrecise, Suite::Recursive, Suite::Polybench]
    }

    /// The display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Termination => "termination",
            Suite::BitPrecise => "bitprecise",
            Suite::Recursive => "recursive",
            Suite::Polybench => "polybench",
        }
    }
}

/// A single benchmark task.
#[derive(Clone, Debug)]
pub struct Task {
    /// A unique name.
    pub name: String,
    /// The suite the task belongs to.
    pub suite: Suite,
    /// The parsed program.
    pub ast: SourceProgram,
    /// Ground truth: does the program terminate from every initial state?
    pub terminating: bool,
}

impl Task {
    /// Builds a task from mini-language source text.
    ///
    /// # Panics
    ///
    /// Panics if the source does not parse (a bug in the corpus, caught by
    /// the test suite).
    pub fn from_source(name: &str, suite: Suite, source: &str, terminating: bool) -> Task {
        let ast = parse_source(source).unwrap_or_else(|e| panic!("task {}: {}", name, e));
        Task { name: name.to_string(), suite, ast, terminating }
    }

    /// Lowers the task's program to its control-flow-graph form.
    ///
    /// # Panics
    ///
    /// Panics if lowering fails (a bug in the corpus, caught by the test
    /// suite).
    pub fn program(&self) -> Program {
        lower(&self.ast).unwrap_or_else(|e| panic!("task {}: {}", self.name, e))
    }
}

/// Returns every task of a suite.
pub fn suite_tasks(suite: Suite) -> Vec<Task> {
    match suite {
        Suite::Termination => termination::tasks(),
        Suite::BitPrecise => bitprecise::tasks(),
        Suite::Recursive => recursive::tasks(),
        Suite::Polybench => polybench::tasks(),
    }
}

/// Returns every task of every suite.
pub fn all_tasks() -> Vec<Task> {
    Suite::all().into_iter().flat_map(suite_tasks).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_compiles() {
        for task in all_tasks() {
            let program = task.program();
            assert!(!program.vars.is_empty() || program.num_edges() > 0, "{}", task.name);
        }
    }

    #[test]
    fn suites_are_nonempty_and_named_uniquely() {
        let mut names = std::collections::HashSet::new();
        for suite in Suite::all() {
            let tasks = suite_tasks(suite);
            assert!(tasks.len() >= 8, "suite {} too small", suite.name());
            for t in &tasks {
                assert_eq!(t.suite, suite);
                assert!(names.insert(t.name.clone()), "duplicate task name {}", t.name);
            }
        }
    }

    #[test]
    fn bitprecise_mirrors_termination() {
        // The bit-precise suite is derived from the termination suite.
        assert_eq!(
            suite_tasks(Suite::BitPrecise).len(),
            suite_tasks(Suite::Termination).len()
        );
    }

    #[test]
    fn recursive_tasks_have_calls() {
        for task in suite_tasks(Suite::Recursive) {
            assert!(task.program().has_calls(), "{} has no calls", task.name);
        }
    }

    #[test]
    fn polybench_tasks_have_nested_loops_and_no_calls() {
        for task in suite_tasks(Suite::Polybench) {
            assert!(!task.program().has_calls(), "{} has calls", task.name);
            assert!(task.terminating, "{} should be terminating", task.name);
        }
    }

    #[test]
    fn generators_produce_compiling_programs() {
        use compact_lang::compile;
        for depth in 1..=3 {
            let src = nested_counting_loops(depth, 16);
            assert!(compile(&src).is_ok());
        }
        let src = counting_loop_chain(4, 10);
        assert!(compile(&src).is_ok());
        for src in phase_loop_family(3) {
            assert!(compile(&src).is_ok());
        }
    }
}
