//! The `polybench` suite: affine loop nests in the shape of the PolyBench
//! numerical kernels (deep nesting, simple termination arguments).
//!
//! PolyBench kernels operate on arrays; the mini language has no arrays, so
//! each kernel keeps the exact loop-nest structure and replaces array
//! accesses by scalar accumulator updates — the termination structure (loop
//! bounds, nesting, strides) is preserved, which is all §7 exercises.

use crate::{Suite, Task};

pub(crate) fn table() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        (
            "gemm",
            r#"proc main() {
                i := 0;
                while (i < ni) {
                    j := 0;
                    while (j < nj) {
                        acc := 0;
                        k := 0;
                        while (k < nk) { acc := acc + 1; k := k + 1; }
                        j := j + 1;
                    }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "two_mm",
            r#"proc main() {
                i := 0;
                while (i < ni) {
                    j := 0;
                    while (j < nj) { k := 0; while (k < nk) { tmp := tmp + 1; k := k + 1; } j := j + 1; }
                    i := i + 1;
                }
                i := 0;
                while (i < ni) {
                    j := 0;
                    while (j < nl) { k := 0; while (k < nj) { d := d + 1; k := k + 1; } j := j + 1; }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "three_mm",
            r#"proc main() {
                i := 0;
                while (i < n) {
                    j := 0;
                    while (j < n) { k := 0; while (k < n) { e := e + 1; k := k + 1; } j := j + 1; }
                    i := i + 1;
                }
                i := 0;
                while (i < n) {
                    j := 0;
                    while (j < n) { k := 0; while (k < n) { f := f + 1; k := k + 1; } j := j + 1; }
                    i := i + 1;
                }
                i := 0;
                while (i < n) {
                    j := 0;
                    while (j < n) { k := 0; while (k < n) { g := g + 1; k := k + 1; } j := j + 1; }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "jacobi_1d",
            r#"proc main() {
                t := 0;
                while (t < tsteps) {
                    i := 1;
                    while (i < n - 1) { a := a + 1; i := i + 1; }
                    i := 1;
                    while (i < n - 1) { b := b + 1; i := i + 1; }
                    t := t + 1;
                }
            }"#,
            true,
        ),
        (
            "jacobi_2d",
            r#"proc main() {
                t := 0;
                while (t < tsteps) {
                    i := 1;
                    while (i < n - 1) {
                        j := 1;
                        while (j < n - 1) { a := a + 1; j := j + 1; }
                        i := i + 1;
                    }
                    t := t + 1;
                }
            }"#,
            true,
        ),
        (
            "seidel_2d",
            r#"proc main() {
                t := 0;
                while (t <= tsteps - 1) {
                    i := 1;
                    while (i <= n - 2) {
                        j := 1;
                        while (j <= n - 2) { a := a + 1; j := j + 1; }
                        i := i + 1;
                    }
                    t := t + 1;
                }
            }"#,
            true,
        ),
        (
            "lu_triangular",
            r#"proc main() {
                i := 0;
                while (i < n) {
                    j := 0;
                    while (j < i) {
                        k := 0;
                        while (k < j) { a := a + 1; k := k + 1; }
                        j := j + 1;
                    }
                    j := i;
                    while (j < n) { b := b + 1; j := j + 1; }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "cholesky_triangular",
            r#"proc main() {
                i := 0;
                while (i < n) {
                    j := 0;
                    while (j <= i) {
                        k := 0;
                        while (k < j) { acc := acc - 1; k := k + 1; }
                        j := j + 1;
                    }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "trmm",
            r#"proc main() {
                i := 0;
                while (i < m) {
                    j := 0;
                    while (j < n) {
                        k := i + 1;
                        while (k < m) { b := b + 1; k := k + 1; }
                        j := j + 1;
                    }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "atax",
            r#"proc main() {
                i := 0;
                while (i < m) {
                    j := 0;
                    while (j < n) { tmp := tmp + 1; j := j + 1; }
                    j := 0;
                    while (j < n) { y := y + 1; j := j + 1; }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "syrk",
            r#"proc main() {
                i := 0;
                while (i < n) {
                    j := 0;
                    while (j <= i) { c := c + 1; j := j + 1; }
                    j := 0;
                    while (j <= i) {
                        k := 0;
                        while (k < m) { c := c + 1; k := k + 1; }
                        j := j + 1;
                    }
                    i := i + 1;
                }
            }"#,
            true,
        ),
        (
            "nested_const_bound",
            r#"proc main() {
                i := 0;
                while (i < 4096) {
                    j := 0;
                    while (j < 4096) { i := i; j := j + 1; }
                    i := i + 1;
                }
            }"#,
            true,
        ),
    ]
}

/// The tasks of the suite.
pub fn tasks() -> Vec<Task> {
    table()
        .into_iter()
        .map(|(name, source, terminating)| {
            Task::from_source(name, Suite::Polybench, source, terminating)
        })
        .collect()
}
