//! The `recursive` suite: recursive and mutually recursive procedures
//! (SV-COMP `recursive` + `Termination-MainControlFlow` recursive tasks).

use crate::{Suite, Task};

pub(crate) fn table() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        (
            "fib",
            r#"proc main() { g := n; call fib(); }
               proc fib() {
                   if (g <= 1) { r := 1; }
                   else { g := g - 1; call fib(); t := r; g := g - 1; call fib(); r := r + t; }
               }"#,
            true,
        ),
        (
            "factorial",
            r#"proc main() { g := n; acc := 1; call fact(); }
               proc fact() { if (g <= 0) { skip; } else { acc := acc * 2; g := g - 1; call fact(); } }"#,
            true,
        ),
        (
            "countdown_rec",
            r#"proc main() { g := n; call down(); }
               proc down() { if (g > 0) { g := g - 1; call down(); } }"#,
            true,
        ),
        (
            "sum_rec",
            r#"proc main() { g := n; s := 0; call sum(); }
               proc sum() { if (g > 0) { s := s + g; g := g - 1; call sum(); } }"#,
            true,
        ),
        (
            "mutual_even_odd",
            r#"proc main() { g := n; call even(); }
               proc even() { if (g > 0) { g := g - 1; call odd(); } }
               proc odd() { if (g > 0) { g := g - 1; call even(); } }"#,
            true,
        ),
        (
            "binary_descent",
            r#"proc main() { g := n; call halve(); }
               proc halve() { if (g >= 2) { havoc h; assume(2*h <= g && g <= 2*h + 1); g := h; call halve(); } }"#,
            true,
        ),
        (
            "gcd_rec",
            r#"proc main() { assume(a >= 1 && b >= 1); call gcd(); }
               proc gcd() {
                   if (a != b) {
                       if (a > b) { a := a - b; } else { b := b - a; }
                       call gcd();
                   }
               }"#,
            true,
        ),
        (
            "ackermann_shape",
            r#"proc main() { assume(m >= 0 && n >= 0); call ack(); }
               proc ack() {
                   if (m > 0) {
                       if (n > 0) { n := n - 1; call ack(); m := m - 1; havoc n; assume(n >= 0); call ack(); }
                       else { m := m - 1; n := 1; call ack(); }
                   }
               }"#,
            true,
        ),
        (
            "two_calls_budget",
            r#"proc main() { g := n; call spend(); }
               proc spend() {
                   if (g >= 2) { g := g - 2; call spend(); call_noop := 0; g := g - 1; if (g > 0) { call spend(); } }
               }"#,
            true,
        ),
        (
            "recursion_with_halt",
            r#"proc main() { g := n; call probe(); }
               proc probe() {
                   if (g < 0) { halt; }
                   if (g > 0) { g := g - 1; call probe(); }
               }"#,
            true,
        ),
        (
            "nested_loop_in_recursion",
            r#"proc main() { g := n; call work(); }
               proc work() {
                   i := 0;
                   while (i < 4) { i := i + 1; }
                   if (g > 0) { g := g - 1; call work(); }
               }"#,
            true,
        ),
        (
            "descend_by_caller",
            r#"proc main() { g := n; while (g > 0) { call step(); } }
               proc step() { g := g - 1; }"#,
            true,
        ),
    ]
}

/// The tasks of the suite.
pub fn tasks() -> Vec<Task> {
    table()
        .into_iter()
        .map(|(name, source, terminating)| {
            Task::from_source(name, Suite::Recursive, source, terminating)
        })
        .collect()
}
