//! The `termination` suite: small non-recursive programs with challenging
//! termination arguments, in the spirit of the SV-COMP
//! `Termination-MainControlFlow` tasks.

use crate::{Suite, Task};

/// The `(name, source, terminating)` table of the suite.
pub(crate) fn table() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        (
            "count_down",
            "proc main() { while (x > 0) { x := x - 1; } }",
            true,
        ),
        (
            "count_down_nondet_step",
            "proc main() { while (x > 0) { havoc d; assume(d >= 1 && d <= 5); x := x - d; } }",
            true,
        ),
        (
            "count_up_bounded",
            "proc main() { while (x < n) { x := x + 1; } }",
            true,
        ),
        (
            "gcd_subtraction",
            "proc main() { assume(x >= 1 && y >= 1); while (x != y) { if (x > y) { x := x - y; } else { y := y - x; } } }",
            true,
        ),
        (
            "sum_to_zero",
            "proc main() { while (x + y > 0) { if (*) { x := x - 1; } else { y := y - 1; } } }",
            true,
        ),
        (
            "converging_pair",
            "proc main() { while (x > y) { x := x - 1; y := y + 1; } }",
            true,
        ),
        (
            "lexicographic_reset",
            "proc main() { while (x > 0 && y > 0) { if (*) { x := x - 1; havoc y; assume(y >= 0); } else { y := y - 1; } } }",
            true,
        ),
        (
            "eventually_negative",
            "proc main() { while (x > 0) { x := x + y; y := y - 1; } }",
            true,
        ),
        (
            "figure1_nested_budget",
            r#"proc main() {
                step := 8;
                while (true) {
                    m := 0;
                    while (m < step) {
                        if (n < 0) { halt; } else { m := m + 1; n := n - 1; }
                    }
                }
            }"#,
            true,
        ),
        (
            "phase_switch_terminating",
            r#"proc main() {
                assume(f >= 0);
                while (x > 0) {
                    if (f >= 0) { x := x - y; y := y + 1; f := f + 1; }
                    else { x := x + 1; f := f - 1; }
                }
            }"#,
            true,
        ),
        (
            "alternating_direction",
            "proc main() { assume(d == 1 || d == -1); while (x > 0 && x < n) { x := x + d; } }",
            true,
        ),
        (
            "two_counter_race",
            "proc main() { while (i < n) { i := i + 1; j := j + 1; } }",
            true,
        ),
        (
            "bounded_search",
            "proc main() { found := 0; i := 0; while (i < n && found == 0) { if (*) { found := 1; } i := i + 1; } }",
            true,
        ),
        (
            "decreasing_pair_min",
            "proc main() { while (x > 0 && y > 0) { if (*) { x := x - 1; } else { x := x - 1; y := y - 1; } } }",
            true,
        ),
        (
            "budget_refill_once",
            r#"proc main() {
                refilled := 0;
                while (b > 0) {
                    b := b - 1;
                    if (b == 0 && refilled == 0) { refilled := 1; havoc b; assume(b >= 0 && b <= 100); }
                }
            }"#,
            true,
        ),
        (
            "nondet_walk_with_floor",
            "proc main() { while (x > 0) { havoc step; assume(step >= 1); x := x - step; } }",
            true,
        ),
        (
            "strict_majority",
            "proc main() { assume(y >= 1); while (x >= y) { x := x - y; } }",
            true,
        ),
        (
            "shifted_guard",
            "proc main() { while (2*x > 10) { x := x - 3; } }",
            true,
        ),
        (
            "three_phase_cascade",
            r#"proc main() {
                while (a > 0 || b > 0 || c > 0) {
                    if (a > 0) { a := a - 1; }
                    else { if (b > 0) { b := b - 1; } else { c := c - 1; } }
                }
            }"#,
            true,
        ),
        (
            "conditional_even_countdown",
            "proc main() { havoc k; assume(k >= 0); x := 2*k; while (x != 0) { x := x - 2; } }",
            true,
        ),
    ]
}

/// The tasks of the suite.
pub fn tasks() -> Vec<Task> {
    table()
        .into_iter()
        .map(|(name, source, terminating)| {
            Task::from_source(name, Suite::Termination, source, terminating)
        })
        .collect()
}
