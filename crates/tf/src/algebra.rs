//! The TF (transition formula) regular algebra and the MP (mortal
//! precondition) ω-algebra of §5.1.

use crate::TransitionFormula;
use compact_logic::{Formula, Symbol};
use compact_regex::{OmegaAlgebra, RegularAlgebra};
use compact_smt::Solver;

/// A *mortal precondition operator* `mp : TF → SF` (§3.4): given a transition
/// formula `F`, it produces a state formula satisfied only by states from
/// which no infinite `F`-sequence exists.
///
/// The operator is *monotone* when `F₁ ⊨ F₂` implies `mp(F₂) ⊨ mp(F₁)`.
/// Every operator provided by `compact-analysis` is monotone.
pub trait MortalPreconditionOperator {
    /// Computes a mortal precondition for the transition formula.
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula;

    /// A short name used in reports and ablation tables.
    fn name(&self) -> &str {
        "mp"
    }
}

impl<T: MortalPreconditionOperator + ?Sized> MortalPreconditionOperator for &T {
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        (**self).mortal_precondition(solver, tf)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: MortalPreconditionOperator + ?Sized> MortalPreconditionOperator for Box<T> {
    fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
        (**self).mortal_precondition(solver, tf)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The regular algebra **TF** of transition formulas (§5.1): `+` is
/// disjunction, `·` is relational composition, `*` is the over-approximate
/// transitive closure `(-)★`.
pub struct TfAlgebra<'a> {
    solver: &'a Solver,
    vars: Vec<Symbol>,
}

impl<'a> TfAlgebra<'a> {
    /// Creates the algebra for a program over the given variables.
    pub fn new(solver: &'a Solver, vars: Vec<Symbol>) -> TfAlgebra<'a> {
        TfAlgebra { solver, vars }
    }

    /// The program variables of the algebra.
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// The shared SMT solver.
    pub fn solver(&self) -> &Solver {
        self.solver
    }
}

impl<'a> RegularAlgebra for TfAlgebra<'a> {
    type Elem = TransitionFormula;

    fn zero(&self) -> TransitionFormula {
        TransitionFormula::bottom(&self.vars)
    }

    fn one(&self) -> TransitionFormula {
        TransitionFormula::identity(&self.vars)
    }

    fn plus(&self, a: &TransitionFormula, b: &TransitionFormula) -> TransitionFormula {
        a.or(b)
    }

    fn mul(&self, a: &TransitionFormula, b: &TransitionFormula) -> TransitionFormula {
        a.compose(b)
    }

    fn star(&self, a: &TransitionFormula) -> TransitionFormula {
        a.star(self.solver)
    }
}

/// The ω-algebra **MP** of mortal preconditions (§5.1): elements are state
/// formulas, `+` is conjunction, `·` is weakest precondition and `ω` is the
/// underlying mortal precondition operator.
pub struct MpAlgebra<'a, M> {
    solver: &'a Solver,
    operator: M,
}

impl<'a, M: MortalPreconditionOperator> MpAlgebra<'a, M> {
    /// Creates the ω-algebra from a mortal precondition operator.
    pub fn new(solver: &'a Solver, operator: M) -> MpAlgebra<'a, M> {
        MpAlgebra { solver, operator }
    }

    /// The underlying operator.
    pub fn operator(&self) -> &M {
        &self.operator
    }
}

impl<'a, M: MortalPreconditionOperator> OmegaAlgebra<TfAlgebra<'a>> for MpAlgebra<'a, M> {
    type Elem = Formula;

    fn omega(&self, a: &TransitionFormula) -> Formula {
        self.operator.mortal_precondition(self.solver, a)
    }

    fn mul(&self, a: &TransitionFormula, b: &Formula) -> Formula {
        a.wp(self.solver, b)
    }

    fn plus(&self, a: &Formula, b: &Formula) -> Formula {
        Formula::and(vec![a.clone(), b.clone()]).simplify()
    }

    fn zero(&self) -> Formula {
        // The empty ω-language has no infinite paths: every state is mortal.
        Formula::True
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::{parse_formula, Term};
    use compact_regex::{Interpretation, OmegaRegex, Regex};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// A trivially sound mortal precondition operator: `¬Pre(F)` (a state
    /// with no outgoing transition is mortal).
    struct NoStep;

    impl MortalPreconditionOperator for NoStep {
        fn mortal_precondition(&self, solver: &Solver, tf: &TransitionFormula) -> Formula {
            Formula::not(tf.pre(solver))
        }
        fn name(&self) -> &str {
            "no-step"
        }
    }

    #[test]
    fn tf_algebra_semiring_laws_on_examples() {
        let solver = Solver::new();
        let vars = vec![sym("x")];
        let algebra = TfAlgebra::new(&solver, vars.clone());
        let inc = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vars);
        let guard = TransitionFormula::assume(parse_formula("x <= 10").unwrap(), &vars);

        // 1 is a unit for composition.
        let left_unit = algebra.mul(&algebra.one(), &inc);
        let right_unit = algebra.mul(&inc, &algebra.one());
        assert!(left_unit.entails(&solver, &inc) && inc.entails(&solver, &left_unit));
        assert!(right_unit.entails(&solver, &inc) && inc.entails(&solver, &right_unit));

        // 0 annihilates.
        assert!(algebra.mul(&algebra.zero(), &inc).is_empty(&solver));
        assert!(algebra.mul(&inc, &algebra.zero()).is_empty(&solver));

        // + is idempotent and commutative (up to equivalence).
        let a_or_b = algebra.plus(&inc, &guard);
        let b_or_a = algebra.plus(&guard, &inc);
        assert!(a_or_b.entails(&solver, &b_or_a) && b_or_a.entails(&solver, &a_or_b));
        let a_or_a = algebra.plus(&inc, &inc);
        assert!(a_or_a.entails(&solver, &inc) && inc.entails(&solver, &a_or_a));
    }

    #[test]
    fn interpretation_of_a_straight_line_program() {
        // Letters: 'i' = x := x + 1, 'g' = [x >= 3].
        let solver = Solver::new();
        let vars = vec![sym("x")];
        let algebra = TfAlgebra::new(&solver, vars.clone());
        let mp = MpAlgebra::new(&solver, NoStep);
        let inc = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vars);
        let guard = TransitionFormula::assume(parse_formula("x >= 3").unwrap(), &vars);
        let semantic = |l: &char| match l {
            'i' => inc.clone(),
            'g' => guard.clone(),
            _ => unreachable!(),
        };
        let interp = Interpretation::new(&algebra, &mp, semantic);

        // i g : increment then guard.
        let e = Regex::cat(Regex::letter('i'), Regex::letter('g'));
        let t = interp.eval(&e);
        assert!(solver.equivalent(
            &t.pre(&solver),
            &parse_formula("x >= 2").unwrap()
        ));

        // (i g)^ω with the no-step operator: a state is "mortal" if the loop
        // body is eventually disabled; the body is enabled for x >= 2, and
        // once enabled it stays enabled, so the mortal precondition is x < 2
        // ... except that after one iteration x increases, so really no state
        // is mortal except those where the body can never fire; the no-step
        // operator only proves x < 2 states need a closer look: wp through
        // the body.  We simply check soundness: the result must not include
        // a state with an infinite run (e.g. x = 5).
        let f = OmegaRegex::omega(e);
        let mortal = interp.eval_omega(&f);
        let at_5 = mortal.substitute(
            &[(sym("x"), Term::constant(5))].into_iter().collect(),
        );
        assert!(!solver.is_sat(&at_5) || !solver.is_valid(&at_5));
    }

    #[test]
    fn mp_algebra_zero_and_plus() {
        let solver = Solver::new();
        let mp = MpAlgebra::new(&solver, NoStep);
        assert!(mp.zero().is_true());
        let a = parse_formula("x >= 0").unwrap();
        let b = parse_formula("x <= 10").unwrap();
        let c = OmegaAlgebra::<TfAlgebra>::plus(&mp, &a, &b);
        assert!(solver.equivalent(&c, &parse_formula("x >= 0 && x <= 10").unwrap()));
    }
}
