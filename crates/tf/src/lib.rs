//! Transition formulas and the TF / MP interpretation algebras.
//!
//! This crate implements §3.3–§3.4 and §5.1 of *"Termination Analysis
//! without the Tears"*:
//!
//! * [`TransitionFormula`] — LIA formulas over `Var ∪ Var'` with relational
//!   composition, `Pre`/`Post` projections, weakest preconditions and the
//!   over-approximate transitive closure `(-)★` built from the `exp`
//!   operator and the convex hull of the Δ-formula;
//! * [`TfAlgebra`] — the regular algebra of transition formulas;
//! * [`MpAlgebra`] — the ω-algebra of mortal preconditions, parameterized by
//!   a [`MortalPreconditionOperator`];
//! * [`merge_vars`] — footprint bookkeeping shared with the front end.
//!
//! The concrete mortal precondition operators (`mpLLRF`, `mpexp`, phase
//! analysis and the combinators) live in `compact-analysis`.

#![warn(missing_docs)]

mod algebra;
mod transition;

pub use algebra::{MortalPreconditionOperator, MpAlgebra, TfAlgebra};
pub use transition::{merge_vars, TransitionFormula};
