//! Transition formulas (§3.3 of the paper).

use compact_arith::Int;
use compact_logic::{Formula, Symbol, Term, Valuation};
use compact_polyhedra::convex_hull;
use compact_smt::Solver;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A transition formula: an LIA formula over the program variables `Var` and
/// their primed copies `Var'`, describing a binary relation on states.
///
/// A transition formula carries the list of program variables it is a
/// relation over (its *footprint*).  Auxiliary free symbols introduced by
/// relational composition ("Skolem constants" for the intermediate state) are
/// implicitly existentially quantified; [`TransitionFormula::closed_formula`]
/// makes that quantification explicit when needed.
///
/// # Examples
///
/// ```
/// use compact_logic::{Symbol, Term};
/// use compact_tf::TransitionFormula;
/// let x = Symbol::intern("x");
/// // x := x + 1
/// let t = TransitionFormula::assign(x, Term::var(x) + 1, &[x]);
/// assert!(t.formula().free_vars().contains(&Symbol::intern("x'")));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransitionFormula {
    formula: Formula,
    vars: Vec<Symbol>,
}

impl TransitionFormula {
    /// Wraps a formula as a transition formula over the given program
    /// variables.
    pub fn new(formula: Formula, vars: &[Symbol]) -> TransitionFormula {
        TransitionFormula { formula, vars: vars.to_vec() }
    }

    /// The transition formula `false` (no transitions).
    pub fn bottom(vars: &[Symbol]) -> TransitionFormula {
        TransitionFormula::new(Formula::False, vars)
    }

    /// The identity transition `⋀ x' = x` (the `1` of the TF algebra).
    pub fn identity(vars: &[Symbol]) -> TransitionFormula {
        let eqs = vars
            .iter()
            .map(|x| Formula::eq(Term::var(x.primed()), Term::var(*x)))
            .collect();
        TransitionFormula::new(Formula::and(eqs), vars)
    }

    /// The havoc transition: every variable may change arbitrarily.
    pub fn havoc_all(vars: &[Symbol]) -> TransitionFormula {
        TransitionFormula::new(Formula::True, vars)
    }

    /// An assumption `[cond]`: the condition holds on the pre-state and no
    /// variable changes.
    pub fn assume(cond: Formula, vars: &[Symbol]) -> TransitionFormula {
        let identity = TransitionFormula::identity(vars);
        TransitionFormula::new(Formula::and(vec![cond, identity.formula]), vars)
    }

    /// An assignment `x := term`: `x' = term` and every other variable is
    /// unchanged.
    pub fn assign(x: Symbol, term: Term, vars: &[Symbol]) -> TransitionFormula {
        let mut parts = vec![Formula::eq(Term::var(x.primed()), term)];
        for v in vars {
            if *v != x {
                parts.push(Formula::eq(Term::var(v.primed()), Term::var(*v)));
            }
        }
        TransitionFormula::new(Formula::and(parts), vars)
    }

    /// A non-deterministic assignment `x := *`: `x'` is unconstrained and
    /// every other variable is unchanged.
    pub fn havoc(x: Symbol, vars: &[Symbol]) -> TransitionFormula {
        let mut parts = Vec::new();
        for v in vars {
            if *v != x {
                parts.push(Formula::eq(Term::var(v.primed()), Term::var(*v)));
            }
        }
        TransitionFormula::new(Formula::and(parts), vars)
    }

    /// The underlying formula (auxiliary symbols left free).
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The program variables of the footprint.
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// The formula with all auxiliary symbols (free symbols that are neither
    /// in `Var` nor `Var'`) existentially quantified.
    pub fn closed_formula(&self) -> Formula {
        let aux = self.aux_symbols();
        Formula::exists(aux.into_iter().collect(), self.formula.clone())
    }

    fn aux_symbols(&self) -> BTreeSet<Symbol> {
        let allowed: BTreeSet<Symbol> = self
            .vars
            .iter()
            .flat_map(|v| [*v, v.primed()])
            .collect();
        self.formula
            .free_vars()
            .into_iter()
            .filter(|s| !allowed.contains(s))
            .collect()
    }

    /// Disjunction (the `+` of the TF algebra).
    pub fn or(&self, other: &TransitionFormula) -> TransitionFormula {
        let vars = merge_vars(&self.vars, &other.vars);
        TransitionFormula::new(
            Formula::or(vec![self.formula.clone(), other.formula.clone()]),
            &vars,
        )
    }

    /// Relational composition (the `·` of the TF algebra).
    ///
    /// The intermediate state is represented by fresh Skolem symbols, which
    /// remain free in the result (implicitly existentially quantified).
    pub fn compose(&self, other: &TransitionFormula) -> TransitionFormula {
        if self.formula.is_false() || other.formula.is_false() {
            return TransitionFormula::bottom(&merge_vars(&self.vars, &other.vars));
        }
        let vars = merge_vars(&self.vars, &other.vars);
        let mut left_map: BTreeMap<Symbol, Term> = BTreeMap::new();
        let mut right_map: BTreeMap<Symbol, Term> = BTreeMap::new();
        for v in &vars {
            let mid = Symbol::fresh(&format!("{}#mid", v.name()));
            left_map.insert(v.primed(), Term::var(mid));
            right_map.insert(*v, Term::var(mid));
        }
        // Variables missing from one side's footprint are unchanged there.
        let left = self.padded_formula(&vars).substitute(&left_map);
        let right = other.padded_formula(&vars).substitute(&right_map);
        TransitionFormula::new(Formula::and(vec![left, right]), &vars)
    }

    /// The formula extended with `x' = x` for footprint variables of the
    /// enclosing program that this transition does not mention.
    fn padded_formula(&self, vars: &[Symbol]) -> Formula {
        let mut parts = vec![self.formula.clone()];
        for v in vars {
            if !self.vars.contains(v) {
                parts.push(Formula::eq(Term::var(v.primed()), Term::var(*v)));
            }
        }
        Formula::and(parts)
    }

    /// Re-footprints the transition formula over a larger variable set.
    pub fn extend_footprint(&self, vars: &[Symbol]) -> TransitionFormula {
        let merged = merge_vars(&self.vars, vars);
        TransitionFormula::new(self.padded_formula(&merged), &merged)
    }

    /// `Pre(F) ≜ ∃Var'. F` as a quantifier-free state formula.
    pub fn pre(&self, solver: &Solver) -> Formula {
        let primed: Vec<Symbol> = self.vars.iter().map(Symbol::primed).collect();
        let mut quantified: Vec<Symbol> = primed;
        quantified.extend(self.aux_symbols());
        solver.qe(&Formula::exists(quantified, self.formula.clone()))
    }

    /// `Post(F) ≜ ∃Var. F`, expressed over `Var` (the primed variables are
    /// renamed back to their unprimed versions).
    pub fn post(&self, solver: &Solver) -> Formula {
        let mut quantified: Vec<Symbol> = self.vars.clone();
        quantified.extend(self.aux_symbols());
        let projected = solver.qe(&Formula::exists(quantified, self.formula.clone()));
        let rename: BTreeMap<Symbol, Symbol> = self
            .vars
            .iter()
            .map(|v| (v.primed(), *v))
            .collect();
        projected.rename(&rename)
    }

    /// The weakest precondition `wp(F, S) ≜ ∀Var'. F ⇒ S[Var ↦ Var']`,
    /// returned as a quantifier-free state formula over `Var`.
    pub fn wp(&self, solver: &Solver, post: &Formula) -> Formula {
        let prime_map: BTreeMap<Symbol, Term> = self
            .vars
            .iter()
            .map(|v| (*v, Term::var(v.primed())))
            .collect();
        let shifted_post = post.substitute(&prime_map);
        let mut quantified: Vec<Symbol> = self.vars.iter().map(Symbol::primed).collect();
        quantified.extend(self.aux_symbols());
        let wp = Formula::forall(
            quantified,
            Formula::implies(self.formula.clone(), shifted_post),
        );
        solver.qe(&wp).simplify()
    }

    /// The `exp(F, k)` operator of §3.3: a formula entailed by `F^k` for
    /// every `k ≥ 0`, combining the reflexive pre/post approximation with the
    /// recurrence inequalities obtained from the convex hull of the
    /// Δ-formula.
    pub fn exp(&self, solver: &Solver, k: Symbol) -> Formula {
        // Part 1:  (⋀ x' = x)  ∨  (Pre(F) ∧ Post(F)[Var ↦ Var']).
        let identity = TransitionFormula::identity(&self.vars).formula;
        let pre = self.pre(solver);
        let post_over_post_vars = {
            let prime_map: BTreeMap<Symbol, Term> = self
                .vars
                .iter()
                .map(|v| (*v, Term::var(v.primed())))
                .collect();
            self.post(solver).substitute(&prime_map)
        };
        let part1 = Formula::or(vec![
            identity,
            Formula::and(vec![pre, post_over_post_vars]),
        ]);

        // Part 2: recurrence inequalities from the convex hull of the
        // Δ-formula, scaled by k.
        let recurrences = self.delta_hull_constraints(solver);
        let mut scaled = Vec::new();
        for (delta_term, constant, is_eq) in recurrences {
            // delta_term + constant (≤ / =) 0 over the δ variables, where δ_x
            // stands for x' - x.  The k-step version replaces the constant c
            // by c·k.
            let mut substituted = Term::constant(Int::zero());
            for (sym, coeff) in delta_term.iter() {
                // sym is δ_x encoded as the program variable x itself.
                substituted = substituted
                    + (Term::var(sym.primed()) - Term::var(*sym)).scale(coeff.clone());
            }
            substituted = substituted + Term::var(k).scale(constant);
            scaled.push(if is_eq {
                Formula::eq(substituted, Term::constant(0))
            } else {
                Formula::le(substituted, Term::constant(0))
            });
        }
        Formula::and(vec![part1, Formula::and(scaled)])
    }

    /// Computes the constraints of `conv(∃Var,Var'. F ∧ ⋀ δ_x = x' - x)`,
    /// returned as triples `(linear term over Var standing for the δ
    /// variables, constant, is_equality)`.
    fn delta_hull_constraints(&self, solver: &Solver) -> Vec<(Term, Int, bool)> {
        // Introduce δ variables (named after the program variables to keep
        // the result easy to substitute).
        let mut delta_of: BTreeMap<Symbol, Symbol> = BTreeMap::new();
        let mut defs = vec![self.formula.clone()];
        for v in &self.vars {
            let d = Symbol::fresh(&format!("delta_{}", v.name()));
            delta_of.insert(*v, d);
            defs.push(Formula::eq(
                Term::var(d),
                Term::var(v.primed()) - Term::var(*v),
            ));
        }
        let with_deltas = Formula::and(defs);
        let hull = convex_hull(solver, &with_deltas);
        // Project the hull onto the δ variables.
        let deltas: Vec<Symbol> = delta_of.values().copied().collect();
        let eliminate: Vec<Symbol> = hull
            .vars()
            .into_iter()
            .filter(|v| !deltas.contains(v))
            .collect();
        let projected = hull.project_out(&eliminate);

        let back: BTreeMap<Symbol, Symbol> = delta_of.iter().map(|(v, d)| (*d, *v)).collect();
        projected
            .constraints()
            .iter()
            .map(|c| {
                let renamed = c.term.rename(&back);
                let constant = renamed.constant_part().clone();
                let var_part = renamed - Term::constant(constant.clone());
                (var_part, constant, c.is_eq)
            })
            .collect()
    }

    /// The `(-)★` operator: an over-approximation of the reflexive
    /// transitive closure of the transition formula (§3.3).
    pub fn star(&self, solver: &Solver) -> TransitionFormula {
        let k = Symbol::fresh("loop_k");
        let body = self.exp(solver, k);
        let closed = Formula::and(vec![
            Formula::ge(Term::var(k), Term::constant(0)),
            body,
        ]);
        // k stays free (it is an auxiliary, implicitly existential symbol).
        TransitionFormula::new(closed, &self.vars)
    }

    /// Evaluates the transition formula on a concrete pair of states.
    pub fn accepts(&self, solver: &Solver, pre: &Valuation, post: &Valuation) -> bool {
        let transition = Valuation::transition(pre, post);
        let mut substitution: BTreeMap<Symbol, Term> = BTreeMap::new();
        for (sym, value) in transition.iter() {
            substitution.insert(*sym, Term::constant(value.clone()));
        }
        let grounded = self.formula.substitute(&substitution);
        solver.is_sat(&grounded)
    }

    /// Returns `true` if the transition relation is empty.
    pub fn is_empty(&self, solver: &Solver) -> bool {
        !solver.is_sat(&self.formula)
    }

    /// Logical entailment between transition formulas (over their closure).
    pub fn entails(&self, solver: &Solver, other: &TransitionFormula) -> bool {
        solver.entails(&self.closed_formula(), &other.closed_formula())
    }
}

impl fmt::Display for TransitionFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.formula)
    }
}

/// Merges two footprints, preserving order and removing duplicates.
pub fn merge_vars(a: &[Symbol], b: &[Symbol]) -> Vec<Symbol> {
    let mut out = a.to_vec();
    for v in b {
        if !out.contains(v) {
            out.push(*v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_logic::parse_formula;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn vars(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    #[test]
    fn assign_and_assume() {
        let vs = vars(&["x", "y"]);
        let solver = Solver::new();
        let t = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vs);
        // (x=0, y=5) -> (x=1, y=5) is accepted.
        let pre: Valuation = [(sym("x"), 0.into()), (sym("y"), 5.into())].into_iter().collect();
        let post: Valuation = [(sym("x"), 1.into()), (sym("y"), 5.into())].into_iter().collect();
        assert!(t.accepts(&solver, &pre, &post));
        // y must not change.
        let bad: Valuation = [(sym("x"), 1.into()), (sym("y"), 6.into())].into_iter().collect();
        assert!(!t.accepts(&solver, &pre, &bad));

        let a = TransitionFormula::assume(parse_formula("x < 3").unwrap(), &vs);
        assert!(a.accepts(&solver, &pre, &pre));
        let high: Valuation = [(sym("x"), 7.into()), (sym("y"), 5.into())].into_iter().collect();
        assert!(!a.accepts(&solver, &high, &high));
    }

    #[test]
    fn composition_sequences_updates() {
        let vs = vars(&["x"]);
        let solver = Solver::new();
        let inc = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vs);
        let double_inc = inc.compose(&inc);
        let pre: Valuation = [(sym("x"), 3.into())].into_iter().collect();
        let post: Valuation = [(sym("x"), 5.into())].into_iter().collect();
        let wrong: Valuation = [(sym("x"), 4.into())].into_iter().collect();
        assert!(double_inc.accepts(&solver, &pre, &post));
        assert!(!double_inc.accepts(&solver, &pre, &wrong));
    }

    #[test]
    fn composition_with_bottom_is_bottom() {
        let vs = vars(&["x"]);
        let solver = Solver::new();
        let inc = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vs);
        let bot = TransitionFormula::bottom(&vs);
        assert!(inc.compose(&bot).is_empty(&solver));
        assert!(bot.compose(&inc).is_empty(&solver));
    }

    #[test]
    fn pre_and_post() {
        let vs = vars(&["x"]);
        let solver = Solver::new();
        // [x >= 5]; x := x + 1
        let t = TransitionFormula::assume(parse_formula("x >= 5").unwrap(), &vs)
            .compose(&TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vs));
        let pre = t.pre(&solver);
        assert!(solver.equivalent(&pre, &parse_formula("x >= 5").unwrap()));
        let post = t.post(&solver);
        assert!(solver.equivalent(&post, &parse_formula("x >= 6").unwrap()));
    }

    #[test]
    fn weakest_precondition() {
        let vs = vars(&["x"]);
        let solver = Solver::new();
        let t = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vs);
        let wp = t.wp(&solver, &parse_formula("x >= 10").unwrap());
        assert!(solver.equivalent(&wp, &parse_formula("x >= 9").unwrap()));
        // wp through an assumption weakens to an implication.
        let guard = TransitionFormula::assume(parse_formula("x >= 0").unwrap(), &vs);
        let wp2 = guard.wp(&solver, &parse_formula("x >= 10").unwrap());
        assert!(solver.equivalent(
            &wp2,
            &parse_formula("x >= 0 -> x >= 10").unwrap()
        ));
    }

    #[test]
    fn star_of_counting_loop() {
        // x := x + 1  starred: x' >= x and nothing stronger about the gap.
        let vs = vars(&["x"]);
        let solver = Solver::new();
        let inc = TransitionFormula::assign(sym("x"), Term::var(sym("x")) + 1, &vs);
        let star = inc.star(&solver);
        // The identity transition is included.
        let s3: Valuation = [(sym("x"), 3.into())].into_iter().collect();
        assert!(star.accepts(&solver, &s3, &s3));
        // Multiple steps are included.
        let s7: Valuation = [(sym("x"), 7.into())].into_iter().collect();
        assert!(star.accepts(&solver, &s3, &s7));
        // Going backwards is excluded (x only increases).
        let s1: Valuation = [(sym("x"), 1.into())].into_iter().collect();
        assert!(!star.accepts(&solver, &s3, &s1));
    }

    #[test]
    fn star_of_figure1_inner_loop() {
        // inner ≜ m < step ∧ n >= 0 ∧ m' = m+1 ∧ n' = n-1 ∧ step' = step
        let vs = vars(&["m", "n", "step"]);
        let solver = Solver::new();
        let inner = TransitionFormula::new(
            parse_formula("m < step && n >= 0 && m' = m + 1 && n' = n - 1 && step' = step")
                .unwrap(),
            &vs,
        );
        let star = inner.star(&solver);
        // m + n is invariant under the loop: m' + n' = m + n after any number
        // of iterations.
        let claim = parse_formula("m' + n' = m + n && step' = step").unwrap();
        assert!(solver.entails(&star.closed_formula(), &claim));
        // And m never decreases.
        assert!(solver.entails(&star.closed_formula(), &parse_formula("m' >= m").unwrap()));
    }

    #[test]
    fn footprint_merging() {
        let a = TransitionFormula::assign(sym("x"), Term::constant(1), &vars(&["x"]));
        let b = TransitionFormula::assign(sym("y"), Term::constant(2), &vars(&["y"]));
        let c = a.compose(&b);
        assert_eq!(c.vars().len(), 2);
        let solver = Solver::new();
        let pre: Valuation = [(sym("x"), 0.into()), (sym("y"), 0.into())].into_iter().collect();
        let post: Valuation = [(sym("x"), 1.into()), (sym("y"), 2.into())].into_iter().collect();
        assert!(c.accepts(&solver, &pre, &post));
        // x must keep its assigned value through b.
        let bad: Valuation = [(sym("x"), 3.into()), (sym("y"), 2.into())].into_iter().collect();
        assert!(!c.accepts(&solver, &pre, &bad));
    }

    #[test]
    fn or_unions_behaviour() {
        let vs = vars(&["g"]);
        let solver = Solver::new();
        let dec1 = TransitionFormula::assign(sym("g"), Term::var(sym("g")) - 1, &vs);
        let dec2 = TransitionFormula::assign(sym("g"), Term::var(sym("g")) - 2, &vs);
        let both = dec1.or(&dec2);
        let s5: Valuation = [(sym("g"), 5.into())].into_iter().collect();
        let s4: Valuation = [(sym("g"), 4.into())].into_iter().collect();
        let s3: Valuation = [(sym("g"), 3.into())].into_iter().collect();
        assert!(both.accepts(&solver, &s5, &s4));
        assert!(both.accepts(&solver, &s5, &s3));
        assert!(!both.accepts(&solver, &s5, &s5));
    }
}
