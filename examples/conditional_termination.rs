//! Conditional termination: the phased loop of Figure 4 of the paper.
//!
//! The loop does not terminate from every state, but phase analysis finds a
//! non-trivial *mortal precondition*: it terminates whenever `x <= 0` or
//! `f >= 0` holds initially.
//!
//! Run with: `cargo run --example conditional_termination`

use compact::analysis::{Analyzer, MpLlrf, PhaseAnalysis, Verdict};
use compact::logic::{parse_formula, Symbol};
use compact::smt::Solver;
use compact::tf::{MortalPreconditionOperator, TransitionFormula};

fn main() {
    // Whole-program analysis of the Figure 4 loop.
    let source = r#"
        proc main() {
            while (x > 0) {
                if (f >= 0) { x := x - y; y := y + 1; f := f + 1; }
                else { x := x + 1; f := f - 1; }
            }
        }
    "#;
    let analyzer = Analyzer::with_default_config();
    let report = analyzer.analyze_source(source).expect("program compiles");
    println!("verdict             : {:?}", report.verdict);
    println!("mortal precondition : {}", report.mortal_precondition);
    assert_eq!(report.verdict, Verdict::Conditional);

    // The same result, obtained by applying the mpPhase combinator directly
    // to the loop body summary (the way §6.2 presents it).
    let vars: Vec<Symbol> = ["x", "y", "f"].iter().map(|v| Symbol::intern(v)).collect();
    let body = TransitionFormula::new(
        parse_formula(
            "x > 0 && ((f >= 0 && x' = x - y && y' = y + 1 && f' = f + 1) || (f < 0 && x' = x + 1 && f' = f - 1 && y' = y))",
        )
        .unwrap(),
        &vars,
    );
    let solver = Solver::new();
    let plain = MpLlrf::new().mortal_precondition(&solver, &body);
    let phased = PhaseAnalysis::new(MpLlrf::new()).mortal_precondition(&solver, &body);
    println!("mpLLRF alone        : {}", plain);
    println!("mpPhase(P, mpLLRF)  : {}", phased);
    assert!(solver.entails(&plain, &phased), "phase analysis is an improvement");
}
