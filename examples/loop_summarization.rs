//! Algebraic loop summarization: computes the ω-path expression of the
//! program of Figure 1 and walks through the interpretation steps of §2
//! (body summary, `(-)★`, mortal precondition of inner and outer loop).
//!
//! Run with: `cargo run --example loop_summarization`

use compact::analysis::{MpExp, MpLlrf, Ordered, PhaseAnalysis};
use compact::graph::omega_path_expression;
use compact::lang::compile;
use compact::logic::parse_formula;
use compact::smt::Solver;
use compact::tf::{MortalPreconditionOperator, TransitionFormula};

fn main() {
    let source = r#"
        proc main() {
            step := 8;
            while (true) {
                m := 0;
                while (m < step) {
                    if (n < 0) { halt; } else { m := m + 1; n := n - 1; }
                }
            }
        }
    "#;
    let program = compile(source).expect("program compiles");
    let main = program.entry_procedure();

    // Step 1: the ω-path expression of the control flow graph (§4).
    let expr = omega_path_expression(&main.graph, main.entry);
    println!("omega-path expression DAG has {} omega-nodes", expr.dag_size());

    // Step 2: interpret the inner loop body (§2).
    let solver = Solver::new();
    let vars = program.vars.clone();
    let inner_body = TransitionFormula::new(
        parse_formula("m < step && n >= 0 && m' = m + 1 && n' = n - 1 && step' = step").unwrap(),
        &vars,
    );
    let star = inner_body.star(&solver);
    println!("inner body summary entails m' >= m: {}", solver.entails(
        &star.closed_formula(),
        &parse_formula("m' >= m").unwrap(),
    ));

    // The inner loop terminates from every state (ranking function step - m).
    let operator = Ordered::new(MpLlrf::new(), MpExp::new());
    println!("mp(inner) = {}", operator.mortal_precondition(&solver, &inner_body));

    // The outer loop needs phase analysis for its conditional argument.
    let outer_body = TransitionFormula::new(
        parse_formula("m' <= step && step' = step && step > 0").unwrap(),
        &vars,
    );
    let phased = PhaseAnalysis::new(Ordered::new(MpLlrf::new(), MpExp::new()));
    println!("mp(outer-like body) = {}", phased.mortal_precondition(&solver, &outer_body));
}
