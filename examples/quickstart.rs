//! Quickstart: prove termination of a small program and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use compact::prelude::*;

fn main() {
    let source = r#"
        proc main() {
            // A loop with a simple linear ranking function.
            while (x > 0 && y > 0) {
                if (x > y) { x := x - 1; } else { y := y - 1; }
            }
        }
    "#;

    let analyzer = Analyzer::with_default_config();
    let report = analyzer.analyze_source(source).expect("program compiles");

    println!("operator configuration : {}", report.operator);
    println!("mortal precondition    : {}", report.mortal_precondition);
    println!("verdict                : {:?}", report.verdict);
    println!("analysis time          : {:.3}s", report.analysis_time.as_secs_f64());

    assert!(report.proved_termination());
    println!("\nThe program terminates from every initial state.");
}
