//! Inter-procedural analysis: the recursive Fibonacci function of Example
//! 5.4 / Figure 3 of the paper.
//!
//! Run with: `cargo run --example recursive_fibonacci`

use compact::analysis::Analyzer;
use compact::lang::compile;

fn main() {
    let source = r#"
        proc main() {
            g := n;
            call fib();
        }
        proc fib() {
            if (g <= 1) {
                r := 1;
            } else {
                g := g - 1;
                call fib();
                t := r;
                g := g - 1;
                call fib();
                r := r + t;
            }
        }
    "#;
    let program = compile(source).expect("program compiles");
    let analyzer = Analyzer::with_default_config();

    // The procedure summaries computed by the fixpoint of §5.2.
    let summaries = analyzer.compute_summaries(&program);
    for (name, summary) in &summaries {
        println!("summary of {:<5}: {}", name, summary);
    }

    let report = analyzer.analyze_program(&program);
    println!("verdict             : {:?}", report.verdict);
    println!("mortal precondition : {}", report.mortal_precondition);
    assert!(report.proved_termination());
}
