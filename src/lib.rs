//! ComPACT: Compositional and Predictable Analysis for Conditional Termination.
//!
//! This is the façade crate of the ComPACT-rs workspace, a Rust reproduction
//! of *"Termination Analysis without the Tears"* (Zhu & Kincaid, PLDI 2021).
//! It re-exports the public APIs of the individual crates so downstream users
//! can depend on a single crate:
//!
//! * [`arith`] — exact arithmetic (big integers, rationals, simplex LP);
//! * [`logic`] — linear integer arithmetic terms and formulas;
//! * [`smt`] — satisfiability, validity and quantifier elimination for LIA;
//! * [`polyhedra`] — convex polyhedra, convex hull and affine hull of formulas;
//! * [`regex`] — ω-regular expressions and interpretation algebras;
//! * [`graph`] — control-flow graphs and (ω-)path-expression algorithms;
//! * [`tf`] — transition formulas and the TF/MP algebras;
//! * [`analysis`] — the termination analysis itself (mortal precondition
//!   operators, phase analysis, inter-procedural analysis);
//! * [`lang`] — the mini imperative language front end;
//! * [`baselines`] — non-compositional baseline analyzers used in the
//!   evaluation;
//! * [`suites`] — the benchmark corpus used to reproduce the paper's tables.
//!
//! # Quick start
//!
//! ```
//! use compact::prelude::*;
//!
//! let program = r#"
//!     proc main() {
//!         step := 8;
//!         while (true) {
//!             m := 0;
//!             while (m < step) {
//!                 if (n < 0) { halt; } else { m := m + 1; n := n - 1; }
//!             }
//!         }
//!     }
//! "#;
//! let analyzer = Analyzer::with_default_config();
//! let report = analyzer.analyze_source(program).unwrap();
//! assert!(report.proved_termination());
//! ```

pub use compact_analysis as analysis;
pub use compact_arith as arith;
pub use compact_baselines as baselines;
pub use compact_graph as graph;
pub use compact_lang as lang;
pub use compact_logic as logic;
pub use compact_polyhedra as polyhedra;
pub use compact_regex as regex;
pub use compact_smt as smt;
pub use compact_suites as suites;
pub use compact_tf as tf;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use compact_analysis::{Analyzer, AnalyzerConfig, TerminationReport, Verdict};
    pub use compact_lang::{parse_program, Program};
    pub use compact_logic::{Formula, Symbol, Term};
    pub use compact_smt::Solver;
    pub use compact_tf::TransitionFormula;
}
