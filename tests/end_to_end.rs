//! Cross-crate integration tests: front end → path expressions → algebraic
//! interpretation → verdicts, on the paper's running examples.

use compact::prelude::*;
use compact_analysis::{AnalyzerConfig, Verdict};

fn analyze(source: &str) -> compact_analysis::TerminationReport {
    Analyzer::with_default_config()
        .analyze_source(source)
        .expect("program compiles")
}

#[test]
fn terminating_programs_are_proved() {
    let programs = [
        "proc main() { x := 0; while (x < 10) { x := x + 1; } }",
        "proc main() { while (x > 0) { havoc d; assume(d >= 1); x := x - d; } }",
        "proc main() { while (x > y) { x := x - 1; y := y + 1; } }",
    ];
    for source in programs {
        let report = analyze(source);
        assert!(report.proved_termination(), "not proved: {}", source);
    }
}

#[test]
fn divergent_programs_are_not_proved() {
    let programs = [
        "proc main() { while (true) { x := x + 1; } }",
        "proc main() { while (x > 0) { x := x; } }",
    ];
    for source in programs {
        let report = analyze(source);
        assert!(!report.proved_termination(), "unsound verdict on: {}", source);
    }
}

#[test]
fn figure1_terminates_and_inner_loop_summary_is_usable() {
    let report = analyze(
        r#"
        proc main() {
            step := 8;
            while (true) {
                m := 0;
                while (m < step) {
                    if (n < 0) { halt; } else { m := m + 1; n := n - 1; }
                }
            }
        }
        "#,
    );
    assert!(report.proved_termination());
}

#[test]
fn conditional_termination_produces_nontrivial_precondition() {
    let report = analyze(
        r#"
        proc main() {
            while (x > 0) {
                if (f >= 0) { x := x - y; y := y + 1; f := f + 1; }
                else { x := x + 1; f := f - 1; }
            }
        }
        "#,
    );
    assert_eq!(report.verdict, Verdict::Conditional);
    let solver = Solver::new();
    // Example 6.5: the precondition covers f >= 0.
    let covered = compact_logic::parse_formula("f >= 0").unwrap();
    assert!(solver.entails(&covered, &report.mortal_precondition));
}

#[test]
fn ablation_configurations_are_ordered_by_strength_on_an_easy_loop() {
    // Every configuration proves the trivial counting loop.
    let source = "proc main() { while (x > 0) { x := x - 1; } }";
    for config in [
        AnalyzerConfig::llrf_only(),
        AnalyzerConfig::exp_only(),
        AnalyzerConfig::compact_default(),
    ] {
        let analyzer = Analyzer::new(config.clone());
        let report = analyzer.analyze_source(source).unwrap();
        assert!(
            report.proved_termination(),
            "configuration {} failed",
            config.describe()
        );
    }
}

#[test]
fn prelude_exposes_the_advertised_api() {
    // The quick-start shown in the crate documentation.
    let program = parse_program("proc main() { x := 1; }").unwrap();
    assert_eq!(program.procedures.len(), 1);
    let f: Formula = compact_logic::parse_formula("x >= 0").unwrap();
    let t: Term = Term::var(Symbol::intern("x"));
    assert_eq!(t.to_string(), "x");
    let tf = TransitionFormula::assume(f, &[Symbol::intern("x")]);
    assert!(!tf.formula().is_false());
}
