//! Tests for the paper's headline behavioural guarantees: monotonicity
//! (Proposition 5.2) and soundness of the mortal precondition operators,
//! checked against concrete semantics by bounded simulation.

use compact_analysis::{MpExp, MpLlrf, Ordered, PhaseAnalysis};
use compact_arith::Int;
use compact_logic::{parse_formula, Formula, Symbol, Term, Valuation};
use compact_smt::Solver;
use compact_tf::{MortalPreconditionOperator, TransitionFormula};
use proptest::prelude::*;

fn tf(formula: &str, vars: &[&str]) -> TransitionFormula {
    let vs: Vec<Symbol> = vars.iter().map(|v| Symbol::intern(v)).collect();
    TransitionFormula::new(parse_formula(formula).unwrap(), &vs)
}

/// Monotonicity of an operator: strengthening the loop body (more
/// information in) must not weaken the mortal precondition (less information
/// out).
fn check_monotone(operator: &dyn MortalPreconditionOperator, weak: &TransitionFormula, extra: &str) {
    let solver = Solver::new();
    let strong = TransitionFormula::new(
        Formula::and(vec![weak.formula().clone(), parse_formula(extra).unwrap()]),
        weak.vars(),
    );
    let mp_weak = operator.mortal_precondition(&solver, weak);
    let mp_strong = operator.mortal_precondition(&solver, &strong);
    assert!(
        solver.entails(&mp_weak, &mp_strong),
        "{}: mp({}) = {} does not entail mp(strengthened) = {}",
        operator.name(),
        weak,
        mp_weak,
        mp_strong
    );
}

#[test]
fn mp_llrf_is_monotone_on_examples() {
    let op = MpLlrf::new();
    check_monotone(&op, &tf("x' = x - 1 || x' = x + 1", &["x"]), "x > 0 && x' < x");
    check_monotone(&op, &tf("x > 0 && (x' = x - 1 || x' = x)", &["x"]), "x' = x - 1");
    check_monotone(&op, &tf("x != 0 && x' = x - 2", &["x"]), "x > 0");
}

#[test]
fn mp_exp_is_monotone_on_examples() {
    let op = MpExp::new();
    check_monotone(&op, &tf("x' = x - 2", &["x"]), "x != 0");
    check_monotone(&op, &tf("x >= 0 && x' = x + 1", &["x"]), "x >= 5");
}

#[test]
#[ignore = "expensive (phase analysis over the Figure 4 loop, twice); run with --ignored"]
fn combined_operator_is_monotone_on_examples() {
    let op = PhaseAnalysis::new(Ordered::new(MpLlrf::new(), MpExp::new()));
    check_monotone(
        &op,
        &tf(
            "x > 0 && ((f >= 0 && x' = x - y && y' = y + 1 && f' = f + 1) || (f < 0 && x' = x + 1 && f' = f - 1 && y' = y))",
            &["x", "y", "f"],
        ),
        "f >= 0",
    );
}

/// Bounded-interpreter soundness check: any state satisfying the computed
/// mortal precondition must not start a concrete run longer than `fuel`
/// steps when the loop's reachable state space is finite by construction.
fn assert_no_long_run_from_mortal_states(
    operator: &dyn MortalPreconditionOperator,
    body: &TransitionFormula,
    starts: impl Iterator<Item = i64>,
    fuel: usize,
    step: impl Fn(i64) -> Option<i64>,
) {
    let solver = Solver::new();
    let mp = operator.mortal_precondition(&solver, body);
    let x = Symbol::intern("x");
    for start in starts {
        let mut valuation = Valuation::new();
        valuation.set(x, Int::from(start));
        if mp
            .substitute(&[(x, Term::constant(start))].into_iter().collect())
            .eval(&Valuation::new())
            .unwrap_or(false)
        {
            // The state is claimed mortal: simulate.
            let mut current = start;
            for used in 0..=fuel {
                match step(current) {
                    None => break,
                    Some(next) => {
                        assert!(
                            used < fuel,
                            "{}: state {} claimed mortal but ran for {} steps",
                            operator.name(),
                            start,
                            fuel
                        );
                        current = next;
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `mpexp` never declares a divergent start state mortal for the
    /// threshold-divergence loop `while (x >= t) x := x + 1`.
    #[test]
    fn mp_exp_soundness_on_threshold_loops(t in -3i64..3) {
        let body = tf(&format!("x >= {t} && x' = x + 1"), &["x"]);
        let op = MpExp::new();
        assert_no_long_run_from_mortal_states(
            &op,
            &body,
            -6..6,
            64,
            |x| if x >= t { Some(x + 1) } else { None },
        );
    }

    /// `mpLLRF ⋉ mpexp` is sound on bounded-decrease loops
    /// `while (x > 0) x := x - d` for a fixed d.
    #[test]
    fn combined_soundness_on_countdown_loops(d in 1i64..4) {
        let body = tf(&format!("x > 0 && x' = x - {d}"), &["x"]);
        let op = Ordered::new(MpLlrf::new(), MpExp::new());
        assert_no_long_run_from_mortal_states(
            &op,
            &body,
            -4..20,
            64,
            |x| if x > 0 { Some(x - d) } else { None },
        );
    }
}
