//! Property-based tests for the logical substrate: the SMT solver and Cooper
//! quantifier elimination are compared against brute-force evaluation over a
//! small grid, and the arithmetic layer is checked against `i128` arithmetic.

use compact_arith::{Int, Rat};
use compact_logic::{Formula, Symbol, Term, Valuation};
use compact_smt::{eliminate_quantifiers, Solver};
use proptest::prelude::*;

/// A small strategy for linear terms over two fixed variables.
fn term_strategy() -> impl Strategy<Value = Term> {
    (-3i64..4, -3i64..4, -5i64..6).prop_map(|(a, b, c)| {
        Term::var(Symbol::intern("p")) * a + Term::var(Symbol::intern("q")) * b + c
    })
}

/// A strategy for small quantifier-free formulas over `p` and `q`.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        term_strategy().prop_map(|t| Formula::le(t, Term::constant(0))),
        term_strategy().prop_map(|t| Formula::eq(t, Term::constant(0))),
        (2i64..4, term_strategy()).prop_map(|(n, t)| Formula::divides(n, t)),
    ];
    atom.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

/// Brute-force satisfiability of a formula over `p, q ∈ [-bound, bound]`.
fn brute_force_sat(f: &Formula, bound: i64) -> bool {
    for p in -bound..=bound {
        for q in -bound..=bound {
            let mut v = Valuation::new();
            v.set(Symbol::intern("p"), p.into());
            v.set(Symbol::intern("q"), q.into());
            if f.eval(&v) == Some(true) {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// If a formula has a model in a small box, the solver must find one
    /// (and it must actually satisfy the formula).
    #[test]
    fn solver_agrees_with_brute_force(f in formula_strategy()) {
        let solver = Solver::new();
        let brute = brute_force_sat(&f, 4);
        if brute {
            let model = solver.model(&f);
            prop_assert!(model.is_some(), "solver missed a model of {}", f);
            prop_assert_eq!(f.eval(&model.unwrap()), Some(true));
        } else if solver.is_sat(&f) {
            // The solver may find a model outside the box; verify it.
            let model = solver.model(&f).expect("sat implies model");
            prop_assert_eq!(f.eval(&model), Some(true), "bogus model for {}", f);
        }
    }

    /// Quantifier elimination preserves the set of models of ∃q.F over the
    /// remaining variable.
    #[test]
    fn cooper_elimination_is_equivalent(f in formula_strategy()) {
        let q = Symbol::intern("q");
        let exists = Formula::exists(vec![q], f);
        let eliminated = eliminate_quantifiers(&exists);
        prop_assert!(eliminated.is_quantifier_free());
        for p in -4i64..=4 {
            let mut v = Valuation::new();
            v.set(Symbol::intern("p"), p.into());
            // Ground truth: does some q in a wide range satisfy f?  Cooper's
            // small-model property for these coefficients keeps witnesses
            // within the scanned range.
            let mut witness = false;
            for q_val in -40i64..=40 {
                let mut w = v.clone();
                w.set(q, q_val.into());
                if exists_body(&exists).eval(&w) == Some(true) {
                    witness = true;
                    break;
                }
            }
            let qe_value = eliminated.eval(&v);
            prop_assert_eq!(
                qe_value, Some(witness),
                "disagreement at p={} for {}", p, eliminated
            );
        }
    }

    /// Big-integer arithmetic agrees with i128 on small values.
    #[test]
    fn int_matches_i128(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let ia = Int::from(a);
        let ib = Int::from(b);
        prop_assert_eq!((&ia + &ib).to_i64(), Some(a + b));
        prop_assert_eq!((&ia - &ib).to_i64(), Some(a - b));
        prop_assert_eq!((&ia * &ib).to_i64(), (a as i128 * b as i128).try_into().ok());
        if b != 0 {
            prop_assert_eq!((&ia / &ib).to_i64(), Some(a / b));
            prop_assert_eq!((&ia % &ib).to_i64(), Some(a % b));
        }
    }

    /// Rational arithmetic satisfies field laws on small values.
    #[test]
    fn rat_field_laws(a in -20i64..20, b in 1i64..20, c in -20i64..20, d in 1i64..20) {
        let x = Rat::new(a.into(), b.into());
        let y = Rat::new(c.into(), d.into());
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&(&x + &y) - &y, x.clone());
        prop_assert_eq!(&x * &y, &y * &x);
        if !y.is_zero() {
            prop_assert_eq!(&(&x / &y) * &y, x);
        }
    }
}

/// Extracts the body of a top-level existential (helper for the QE test).
fn exists_body(f: &Formula) -> &Formula {
    match f {
        Formula::Exists(_, body) => body,
        other => other,
    }
}
